// Figure 9 (extension) — nonblocking halo exchange: how much of the halo
// swap hides behind core-link forces.  The paper's halo swaps are fully
// synchronous ("a series of matched sendrecv calls"); the overlapped
// schedule posts dimension-0 receives before the core-link force pass and
// drains them after, so a message only costs wall-clock time when it is
// still in flight once the core work runs out ("exposed").  This bench
// measures the real host, not the cost model: per-step time and the
// runtime's own overlapped/exposed byte split, swept over rank count and
// blocks per process for both schedules.
#include <sstream>

#include "common.hpp"

using namespace hdem;
using namespace hdem::bench;

namespace {

struct Config {
  int D;
  int nprocs;
  int bpp;
};

// Best-of-reps measurement: host timing on a shared machine is noisy and
// the minimum is the least-contended run.
perf::MeasuredRun measure_best(const perf::MeasureSpec& spec, int reps) {
  perf::MeasuredRun best = perf::measure_run(spec);
  for (int r = 1; r < reps; ++r) {
    perf::MeasuredRun m = perf::measure_run(spec);
    if (m.host_seconds < best.host_seconds) best = std::move(m);
  }
  return best;
}

double exposed_fraction(const perf::RunMeasurement& run) {
  const double ov = static_cast<double>(run.agg.bytes_overlapped);
  const double ex = static_cast<double>(run.agg.bytes_exposed);
  return ov + ex > 0.0 ? ex / (ov + ex) : 0.0;
}

// Mean exposed wait per rank per iteration, in milliseconds.
double exposed_ms_per_step(const perf::RunMeasurement& run) {
  const double denom = static_cast<double>(run.nprocs) *
                       static_cast<double>(run.iterations);
  return static_cast<double>(run.agg.exposed_wait_ns) / 1e6 / denom;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchContext ctx;
  // Host-time bench: modest systems keep the oversubscribed rank sweep
  // fast while leaving enough core work per block to hide a halo.
  ctx.n2 = 24'000;
  ctx.n3 = 32'000;
  ctx.iters = 6;
  declare_common_options(cli, ctx);
  const auto reps =
      cli.integer("reps", 3, "repetitions per configuration (best-of)");
  const auto procs = cli.integer_list("procs", {2, 4, 8}, "rank counts");
  const auto bpps = cli.integer_list("bpp", {1, 4}, "blocks per process");
  const auto which = cli.choice("overlap", "both", {"off", "on", "both"},
                                "which halo schedule(s) to run");
  if (cli.finish()) return 0;

  std::vector<Config> configs;
  for (int D : {2, 3}) {
    for (const auto p : procs) {
      for (const auto bpp : bpps) {
        configs.push_back({D, static_cast<int>(p), static_cast<int>(bpp)});
      }
    }
  }

  std::ostringstream out;
  out << "== Fig 9: overlapped halo exchange vs synchronous (host time, "
         "rc=1.5, reordered) ==\n\n";
  Table t({"D", "P", "B/P", "t/iter off (ms)", "t/iter on (ms)", "speedup",
           "exposed frac", "exposed ms/step"});
  std::ostringstream json;
  json << "{\n  \"n2\": " << ctx.n2 << ",\n  \"n3\": " << ctx.n3
       << ",\n  \"iterations\": " << ctx.iters << ",\n  \"results\": [";
  bool first = true;
  for (const auto& c : configs) {
    perf::MeasureSpec spec;
    spec.D = c.D;
    spec.n = ctx.n_for(c.D);
    spec.rc_factor = 1.5;
    spec.mode = perf::MeasureSpec::Mode::kMp;
    spec.nprocs = c.nprocs;
    spec.blocks_per_proc = c.bpp;
    spec.iterations = ctx.iters;

    double t_off = 0.0, t_on = 0.0, frac = 0.0, exposed_ms = 0.0;
    std::uint64_t ov_bytes = 0, ex_bytes = 0, waits_blocked = 0;
    if (which != "on") {
      spec.overlap = false;
      t_off = measure_best(spec, static_cast<int>(reps))
                  .host_seconds_per_iter();
    }
    if (which != "off") {
      spec.overlap = true;
      const auto m = measure_best(spec, static_cast<int>(reps));
      t_on = m.host_seconds_per_iter();
      frac = exposed_fraction(m.run);
      exposed_ms = exposed_ms_per_step(m.run);
      ov_bytes = m.run.agg.bytes_overlapped;
      ex_bytes = m.run.agg.bytes_exposed;
      waits_blocked = m.run.agg.waits_blocked;
    }
    const double speedup = t_off > 0.0 && t_on > 0.0 ? t_off / t_on : 0.0;
    t.add_row({std::to_string(c.D), std::to_string(c.nprocs),
               std::to_string(c.bpp),
               t_off > 0.0 ? Table::num(t_off * 1e3, 2) : "-",
               t_on > 0.0 ? Table::num(t_on * 1e3, 2) : "-",
               speedup > 0.0 ? Table::num(speedup, 3) + "x" : "-",
               t_on > 0.0 ? Table::num(100.0 * frac, 1) + "%" : "-",
               t_on > 0.0 ? Table::num(exposed_ms, 3) : "-"});
    json << (first ? "" : ",") << "\n    {\"D\": " << c.D
         << ", \"nprocs\": " << c.nprocs << ", \"blocks_per_proc\": " << c.bpp
         << ", \"seconds_per_iter_off\": " << t_off
         << ", \"seconds_per_iter_on\": " << t_on
         << ", \"speedup\": " << speedup
         << ", \"exposed_fraction\": " << frac
         << ", \"exposed_wait_ms_per_step\": " << exposed_ms
         << ", \"bytes_overlapped\": " << ov_bytes
         << ", \"bytes_exposed\": " << ex_bytes
         << ", \"waits_blocked\": " << waits_blocked << "}";
    first = false;
  }
  json << "\n  ]\n}\n";
  out << t.render() << "\n";
  out << "Shape checks:\n"
      << "  - exposed fraction well below 1: most dimension-0 halo bytes\n"
      << "    arrive while core-link forces execute\n"
      << "  - exposed wait per step shrinks with B/P at fixed P (more core\n"
      << "    compute per message round) and the on-schedule never loses\n"
      << "    materially to the synchronous one\n"
      << "  - only dimension 0 can overlap (later dimensions forward\n"
      << "    corner data), so the hidden share is bounded by dim 0's\n"
      << "    share of halo traffic\n";
  perf::save_artifact("BENCH_halo_overlap.json", json.str());
  out << "Per-configuration results written to "
         "results/BENCH_halo_overlap.json\n";
  emit("fig9.txt", out.str());
  return 0;
}
