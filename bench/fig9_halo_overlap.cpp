// Figure 9 (extension) — nonblocking halo exchange: how much of the halo
// swap hides behind core-link forces.  The paper's halo swaps are fully
// synchronous ("a series of matched sendrecv calls"); the overlapped
// schedule posts dimension-0 receives before the core-link force pass and
// drains them after, so a message only costs wall-clock time when it is
// still in flight once the core work runs out ("exposed").  This bench
// measures the real host, not the cost model: per-step time and the
// runtime's own overlapped/exposed byte split, swept over rank count and
// blocks per process for both schedules.
// The second half of the bench measures the zero-copy shared-window halo
// path (same-node ranks gather halos from the neighbour's published
// boundary slice) against the wire path: a bit-identity gate over full
// trajectories for every node packing and team size, a byte-conservation
// check, and the halo-exchange speedup.  The speedup follows the repo's
// standard recipe — measured operation counts priced by the calibrated
// cost model on the paper's SMP-cluster machine — because host wall time
// cannot see the win on an oversubscribed box: with more ranks than CPUs
// the halo phase measures scheduler interleaving, not transport (the wire
// path parks skew in the uncounted collective phase; the window fence
// absorbs it in the counted one).  Measured wall phases are still
// reported alongside.  Results land in results/BENCH_halo_sharedmem.json;
// any identity, conservation, or modeled-speedup failure makes the bench
// exit nonzero.
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>

#include "common.hpp"
#include "driver/mp_sim.hpp"
#include "trace/tracer.hpp"

using namespace hdem;
using namespace hdem::bench;

namespace {

struct Config {
  int D;
  int nprocs;
  int bpp;
};

// Best-of-reps measurement: host timing on a shared machine is noisy and
// the minimum is the least-contended run.
perf::MeasuredRun measure_best(const perf::MeasureSpec& spec, int reps) {
  perf::MeasuredRun best = perf::measure_run(spec);
  for (int r = 1; r < reps; ++r) {
    perf::MeasuredRun m = perf::measure_run(spec);
    if (m.host_seconds < best.host_seconds) best = std::move(m);
  }
  return best;
}

double exposed_fraction(const perf::RunMeasurement& run) {
  const double ov = static_cast<double>(run.agg.bytes_overlapped);
  const double ex = static_cast<double>(run.agg.bytes_exposed);
  return ov + ex > 0.0 ? ex / (ov + ex) : 0.0;
}

// Mean exposed wait per rank per iteration, in milliseconds.
double exposed_ms_per_step(const perf::RunMeasurement& run) {
  const double denom = static_cast<double>(run.nprocs) *
                       static_cast<double>(run.iterations);
  return static_cast<double>(run.agg.exposed_wait_ns) / 1e6 / denom;
}

// -- shared-window halo series ----------------------------------------------

struct SharedRun {
  double halo_seconds = 0.0;  // tracer: halo-swap + halo-wait + halo-shared
  Counters total;             // merged over ranks
  std::vector<StateRecord<2>> state2;
  std::vector<StateRecord<3>> state3;
};

template <int D>
std::vector<StateRecord<D>>& state_of(SharedRun& r) {
  if constexpr (D == 2) {
    return r.state2;
  } else {
    return r.state3;
  }
}

// One MpSim run with the tracer bracketing the measured steps.  The
// tracer is process-global, so a barrier fences every rank out of any
// phase while rank 0 flips it.
template <int D>
SharedRun run_shared_case(std::uint64_t n, int nprocs, int bpp, int nthreads,
                          bool shared, int ranks_per_node, int warmup,
                          int steps, double velocity_scale,
                          std::uint64_t seed) {
  SimConfig<D> cfg;
  cfg.box = Vec<D>(SimConfig<D>::paper_box_edge(n));
  cfg.seed = seed;
  cfg.velocity_scale = velocity_scale;
  const ElasticSphere model{cfg.stiffness, cfg.diameter};
  const auto init = uniform_random_particles(cfg, n);
  const auto layout = DecompLayout<D>::make(nprocs, bpp);
  typename MpSim<D>::Options opts;
  opts.nthreads = nthreads;
  // The identity gate compares two runs bit-for-bit; the atomic-family
  // reductions are not run-to-run reproducible at T > 1, so team runs pin
  // the deterministic colored reduction.
  if (nthreads > 1) opts.reduction = ReductionKind::kColored;
  opts.shared_halo = shared;
  opts.ranks_per_node = ranks_per_node;

  SharedRun out;
  std::mutex mu;
  mp::run(nprocs, [&](mp::Comm& comm) {
    MpSim<D> sim(cfg, layout, comm, model, init, opts);
    for (int w = 0; w < warmup; ++w) sim.step();
    comm.barrier();
    if (comm.rank() == 0) trace::Tracer::global().enable(true);
    comm.barrier();
    sim.run(static_cast<std::uint64_t>(steps));
    comm.barrier();
    auto mine = sim.gather_state();
    const Counters c = sim.counters();
    {
      std::lock_guard<std::mutex> lock(mu);
      out.total.merge(c);
    }
    if (comm.rank() == 0) state_of<D>(out) = std::move(mine);
  });
  for (const auto& s : trace::Tracer::global().summarize()) {
    if (s.phase == trace::Phase::kHaloSwap ||
        s.phase == trace::Phase::kHaloWait ||
        s.phase == trace::Phase::kHaloShared) {
      out.halo_seconds += s.total_seconds;
    }
  }
  trace::Tracer::global().enable(false);
  return out;
}

// Price one run's measured counts on the paper's SMP-cluster machine
// (Compaq ES40: MPI through shared memory at 300 MB/s + 3 us/message;
// node memory at 1 GB/s + 1.5 us/gather) and return the per-iteration
// communication term.  All ranks sit on one node (ranks_per_node = P),
// so the traffic matrix only needs the aggregate — intra/inter
// classification cannot depend on placement.
double modeled_comm_seconds(int np, int bpp, std::uint64_t n, int steps,
                            const Counters& agg) {
  perf::RunMeasurement run;
  run.D = 3;
  run.n_global = n;
  run.nprocs = np;
  run.nthreads = 1;
  run.nblocks = np * bpp;
  run.iterations = static_cast<std::uint64_t>(steps);
  run.agg = agg;
  run.bytes_matrix.assign(static_cast<std::size_t>(np) * np, 0);
  run.msgs_matrix.assign(static_cast<std::size_t>(np) * np, 0);
  if (np > 1) {
    run.bytes_matrix[1] = agg.bytes_sent;
    run.msgs_matrix[1] = agg.msgs_sent;
  }
  perf::ModelLayout lay;
  lay.ranks_per_node = np;
  return perf::CostModel::predict(perf::compaq_es40_cluster(), run, lay).comm;
}

// bytes(wire) must equal bytes(shared) with the window gathers counted
// back in — the shared path may only re-route traffic, never change it.
bool bytes_conserved(const Counters& wire, const Counters& shm) {
  return wire.bytes_sent + wire.bytes_local ==
         shm.bytes_sent + shm.bytes_shared + shm.bytes_local;
}

template <int D>
bool states_identical(const std::vector<StateRecord<D>>& a,
                      const std::vector<StateRecord<D>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id ||
        std::memcmp(&a[i].pos, &b[i].pos, sizeof(Vec<D>)) != 0 ||
        std::memcmp(&a[i].vel, &b[i].vel, sizeof(Vec<D>)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchContext ctx;
  // Host-time bench: modest systems keep the oversubscribed rank sweep
  // fast while leaving enough core work per block to hide a halo.
  ctx.n2 = 24'000;
  ctx.n3 = 32'000;
  ctx.iters = 6;
  declare_common_options(cli, ctx);
  const auto reps =
      cli.integer("reps", 3, "repetitions per configuration (best-of)");
  const auto procs = cli.integer_list("procs", {2, 4, 8}, "rank counts");
  const auto bpps = cli.integer_list("bpp", {1, 4}, "blocks per process");
  const auto which = cli.choice("overlap", "both", {"off", "on", "both"},
                                "which halo schedule(s) to run");
  if (cli.finish()) return 0;

  std::vector<Config> configs;
  for (int D : {2, 3}) {
    for (const auto p : procs) {
      for (const auto bpp : bpps) {
        configs.push_back({D, static_cast<int>(p), static_cast<int>(bpp)});
      }
    }
  }

  std::ostringstream out;
  out << "== Fig 9: overlapped halo exchange vs synchronous (host time, "
         "rc=1.5, reordered) ==\n\n";
  Table t({"D", "P", "B/P", "t/iter off (ms)", "t/iter on (ms)", "speedup",
           "exposed frac", "exposed ms/step"});
  std::ostringstream json;
  json << "{\n  \"n2\": " << ctx.n2 << ",\n  \"n3\": " << ctx.n3
       << ",\n  \"iterations\": " << ctx.iters << ",\n  \"results\": [";
  bool first = true;
  for (const auto& c : configs) {
    perf::MeasureSpec spec;
    spec.D = c.D;
    spec.n = ctx.n_for(c.D);
    spec.rc_factor = 1.5;
    spec.mode = perf::MeasureSpec::Mode::kMp;
    spec.nprocs = c.nprocs;
    spec.blocks_per_proc = c.bpp;
    spec.iterations = ctx.iters;

    double t_off = 0.0, t_on = 0.0, frac = 0.0, exposed_ms = 0.0;
    std::uint64_t ov_bytes = 0, ex_bytes = 0, waits_blocked = 0;
    if (which != "on") {
      spec.overlap = false;
      t_off = measure_best(spec, static_cast<int>(reps))
                  .host_seconds_per_iter();
    }
    if (which != "off") {
      spec.overlap = true;
      const auto m = measure_best(spec, static_cast<int>(reps));
      t_on = m.host_seconds_per_iter();
      frac = exposed_fraction(m.run);
      exposed_ms = exposed_ms_per_step(m.run);
      ov_bytes = m.run.agg.bytes_overlapped;
      ex_bytes = m.run.agg.bytes_exposed;
      waits_blocked = m.run.agg.waits_blocked;
    }
    const double speedup = t_off > 0.0 && t_on > 0.0 ? t_off / t_on : 0.0;
    t.add_row({std::to_string(c.D), std::to_string(c.nprocs),
               std::to_string(c.bpp),
               t_off > 0.0 ? Table::num(t_off * 1e3, 2) : "-",
               t_on > 0.0 ? Table::num(t_on * 1e3, 2) : "-",
               speedup > 0.0 ? Table::num(speedup, 3) + "x" : "-",
               t_on > 0.0 ? Table::num(100.0 * frac, 1) + "%" : "-",
               t_on > 0.0 ? Table::num(exposed_ms, 3) : "-"});
    json << (first ? "" : ",") << "\n    {\"D\": " << c.D
         << ", \"nprocs\": " << c.nprocs << ", \"blocks_per_proc\": " << c.bpp
         << ", \"seconds_per_iter_off\": " << t_off
         << ", \"seconds_per_iter_on\": " << t_on
         << ", \"speedup\": " << speedup
         << ", \"exposed_fraction\": " << frac
         << ", \"exposed_wait_ms_per_step\": " << exposed_ms
         << ", \"bytes_overlapped\": " << ov_bytes
         << ", \"bytes_exposed\": " << ex_bytes
         << ", \"waits_blocked\": " << waits_blocked << "}";
    first = false;
  }
  json << "\n  ]\n}\n";
  out << t.render() << "\n";
  out << "Shape checks:\n"
      << "  - exposed fraction well below 1: most dimension-0 halo bytes\n"
      << "    arrive while core-link forces execute\n"
      << "  - exposed wait per step shrinks with B/P at fixed P (more core\n"
      << "    compute per message round) and the on-schedule never loses\n"
      << "    materially to the synchronous one\n"
      << "  - only dimension 0 can overlap (later dimensions forward\n"
      << "    corner data), so the hidden share is bounded by dim 0's\n"
      << "    share of halo traffic\n";
  perf::save_artifact("BENCH_halo_overlap.json", json.str());
  out << "Per-configuration results written to "
         "results/BENCH_halo_overlap.json\n";

  // -- shared-window halo exchange --------------------------------------------
  bool gate_ok = true;

  // Bit-identity gate: full trajectories, wire vs shared, across node
  // packings and team sizes, with rebuilds (and window republications)
  // inside the window.  Small system — the gate checks bits, not speed.
  out << "\n== Shared-window halo exchange (zero-copy intra-node) ==\n\n";
  Table tg({"D", "P", "rpn", "T", "identical", "bytes conserved"});
  const int gate_procs = 4;
  std::ostringstream json2;
  json2 << "{\n  \"identity_gate\": [";
  bool first2 = true;
  for (const int rpn : {1, 2, gate_procs}) {
    for (const int nt : {1, 2, 4}) {
      const auto wire = run_shared_case<2>(4000, gate_procs, 1, nt,
                                           /*shared=*/false, rpn,
                                           /*warmup=*/0, /*steps=*/120,
                                           /*velocity_scale=*/0.8, 71);
      const auto shm = run_shared_case<2>(4000, gate_procs, 1, nt,
                                          /*shared=*/true, rpn,
                                          /*warmup=*/0, /*steps=*/120,
                                          /*velocity_scale=*/0.8, 71);
      const bool same = states_identical<2>(wire.state2, shm.state2);
      const bool cons = bytes_conserved(wire.total, shm.total);
      gate_ok = gate_ok && same && cons;
      tg.add_row({"2", std::to_string(gate_procs), std::to_string(rpn),
                  std::to_string(nt), same ? "yes" : "NO",
                  cons ? "yes" : "NO"});
      json2 << (first2 ? "" : ",") << "\n    {\"D\": 2, \"nprocs\": "
            << gate_procs << ", \"ranks_per_node\": " << rpn
            << ", \"nthreads\": " << nt << ", \"steps\": 120"
            << ", \"identical\": " << (same ? "true" : "false")
            << ", \"bytes_conserved\": " << (cons ? "true" : "false")
            << ", \"bytes_shared\": " << shm.total.bytes_shared
            << ", \"window_republishes\": " << shm.total.window_republishes
            << "}";
      first2 = false;
    }
  }
  out << tg.render() << "\n";

  // Halo-exchange speedup: measured counts priced by the cost model on
  // the ES40 machine (the gated number), plus the tracer's measured wall
  // phase totals (halo-swap + halo-wait + halo-shared, best-of-reps) for
  // reference.  All ranks on one node.
  Table ts({"D", "P", "B/P", "wall wire (ms)", "wall shm (ms)", "wall",
            "model wire (ms)", "model shm (ms)", "model speedup",
            "bytes shared"});
  json2 << "\n  ],\n  \"model_machine\": \"CPQ\",\n  \"halo_phase\": [";
  first2 = true;
  for (const auto p : procs) {
    if (p < 4) continue;  // the acceptance regime: >= 4 ranks, one node
    const int np = static_cast<int>(p);
    for (const auto bp : bpps) {
      const int bpp = static_cast<int>(bp);
      const int steps = static_cast<int>(ctx.iters) * 4;
      double t_wire = 0.0, t_shm = 0.0;
      Counters cw, cs;
      for (int r = 0; r < reps; ++r) {
        const auto w = run_shared_case<3>(ctx.n3, np, bpp, 1,
                                          /*shared=*/false,
                                          /*rpn=*/0, /*warmup=*/1, steps,
                                          /*velocity_scale=*/0.05, 73);
        const auto s = run_shared_case<3>(ctx.n3, np, bpp, 1,
                                          /*shared=*/true,
                                          /*rpn=*/0, /*warmup=*/1, steps,
                                          /*velocity_scale=*/0.05, 73);
        if (r == 0 || w.halo_seconds < t_wire) t_wire = w.halo_seconds;
        if (r == 0 || s.halo_seconds < t_shm) t_shm = s.halo_seconds;
        if (r == 0) {
          cw = w.total;
          cs = s.total;
        }
      }
      const bool cons = bytes_conserved(cw, cs);
      gate_ok = gate_ok && cons;
      const double wall_ratio = t_shm > 0.0 ? t_wire / t_shm : 0.0;
      const double m_wire = modeled_comm_seconds(np, bpp, ctx.n3, steps, cw);
      const double m_shm = modeled_comm_seconds(np, bpp, ctx.n3, steps, cs);
      const double speedup = m_shm > 0.0 ? m_wire / m_shm : 0.0;
      gate_ok = gate_ok && speedup >= 1.2;
      ts.add_row({"3", std::to_string(np), std::to_string(bpp),
                  Table::num(t_wire * 1e3, 2), Table::num(t_shm * 1e3, 2),
                  Table::num(wall_ratio, 2) + "x",
                  Table::num(m_wire * 1e3, 3), Table::num(m_shm * 1e3, 3),
                  Table::num(speedup, 3) + "x",
                  std::to_string(cs.bytes_shared)});
      json2 << (first2 ? "" : ",") << "\n    {\"D\": 3, \"nprocs\": " << np
            << ", \"blocks_per_proc\": " << bpp << ", \"ranks_per_node\": 0"
            << ", \"halo_seconds_wire\": " << t_wire
            << ", \"halo_seconds_shared\": " << t_shm
            << ", \"wall_ratio\": " << wall_ratio
            << ", \"modeled_comm_wire\": " << m_wire
            << ", \"modeled_comm_shared\": " << m_shm
            << ", \"halo_speedup\": " << speedup
            << ", \"bytes_wire\": " << cw.bytes_sent
            << ", \"bytes_shared\": " << cs.bytes_shared
            << ", \"bytes_local\": " << cs.bytes_local
            << ", \"bytes_conserved\": " << (cons ? "true" : "false") << "}";
      first2 = false;
    }
  }
  json2 << "\n  ]\n}\n";
  out << ts.render() << "\n";
  out << "Shape checks:\n"
      << "  - every identity row says yes: the shared path delivers\n"
      << "    bit-identical trajectories for any node packing / team size\n"
      << "  - bytes conserved: wire bytes saved reappear as shared bytes\n"
      << "  - model speedup >= 1.2x with all ranks on one node: the same\n"
      << "    measured byte/message counts priced on the ES40 fall from\n"
      << "    MPI-through-shared-memory rates (300 MB/s, 3 us/msg) to node\n"
      << "    memory rates (1 GB/s, 1.5 us/gather) — the copies and\n"
      << "    per-message overhead the window transport deletes\n"
      << "  - wall columns are the oversubscribed host's phase times; with\n"
      << "    P ranks per CPU they track scheduler skew, not transport\n"
      << "    (buffered wire sends park the skew in the uncounted\n"
      << "    collective phase, window fences absorb it in the counted\n"
      << "    one), so the wall ratio hovers near or below 1x here\n";
  perf::save_artifact("BENCH_halo_sharedmem.json", json2.str());
  out << "Shared-window results written to "
         "results/BENCH_halo_sharedmem.json\n";
  emit("fig9.txt", out.str());
  if (!gate_ok) {
    std::fputs("FAIL: shared-window identity/conservation gate\n", stderr);
    return 1;
  }
  return 0;
}
