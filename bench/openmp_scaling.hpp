// Shared implementation of Figures 4 and 5: scaling of the pure OpenMP
// (thread-team) code with the number of threads T for the three viable
// force-update strategies, on a given platform.
//
//   atomic           every update protected ("atomic" method)
//   selected-atomic  conflict table; only genuinely shared particles locked
//   transpose        array reduction (stripe performed identically in the
//                    paper, so one representative is plotted)
//   colored          conflict-free color phases, zero locks (this library's
//                    correct realisation of the Section 9.3 no-lock bound)
//
// Critical-region reduction "gave extremely poor results which are not
// shown" — same here (it is exercised by tests and the ablations).
#pragma once

#include <sstream>
#include <vector>

#include "common.hpp"

namespace hdem::bench {

inline int run_openmp_scaling_bench(int argc, char** argv,
                                    const std::string& platform,
                                    const std::vector<int>& threads,
                                    const std::string& figure,
                                    const std::string& title,
                                    const std::string& shape_notes) {
  Cli cli(argc, argv);
  BenchContext ctx;
  declare_common_options(cli, ctx);
  if (cli.finish()) return 0;
  calibrate_platforms(ctx);
  const auto& machine = ctx.machine(platform);

  // Serial reference (the paper normalises thread scaling to one CPU).
  perf::MeasureSpec ref;
  ref.D = 3;
  ref.n = ctx.n_for(3);
  ref.rc_factor = 1.5;
  ref.mode = perf::MeasureSpec::Mode::kSerial;
  ref.iterations = ctx.iters;
  const double t_serial =
      predict_paper_seconds(machine, perf::measure_run(ref).run, 1);

  const std::vector<ReductionKind> strategies = {
      ReductionKind::kAtomicAll, ReductionKind::kSelectedAtomic,
      ReductionKind::kTranspose, ReductionKind::kColored};

  std::ostringstream out;
  out << "== " << title << " ==\n\n";
  Table t({"method", "T", "model t (s)", "speedup vs serial", "eff"});
  AsciiPlot plot(title, "threads T", "speedup", 60, 16);
  for (const auto kind : strategies) {
    std::vector<double> xs, ys;
    for (int T : threads) {
      perf::MeasureSpec spec = ref;
      spec.mode = perf::MeasureSpec::Mode::kSmp;
      spec.nthreads = T;
      spec.reduction = kind;
      const auto m = perf::measure_run(spec);
      const double tp = predict_paper_seconds(machine, m.run, 1);
      const double speedup = t_serial / tp;
      t.add_row({to_string(kind), std::to_string(T), Table::num(tp, 3),
                 Table::num(speedup, 2),
                 Table::num(speedup / T, 2)});
      xs.push_back(T);
      ys.push_back(speedup);
    }
    plot.add_series({to_string(kind), xs, ys});
  }
  out << t.render() << "\n" << plot.render() << "\n" << shape_notes;
  emit(figure, out.str());
  return 0;
}

}  // namespace hdem::bench
