// Section 9.3 ablation — "If an incorrect code is run that omits to lock
// the force updates (simulating a machine with an extremely efficient
// atomic lock), we actually observe superior performance of the hybrid
// code over MPI for D = 3 and small B".  This bounds how much of the
// hybrid model's deficit is the atomic protection itself.
#include <sstream>

#include "common.hpp"

using namespace hdem;
using namespace hdem::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchContext ctx;
  declare_common_options(cli, ctx);
  if (cli.finish()) return 0;
  calibrate_platforms(ctx);
  const auto& machine = ctx.cpq;

  const std::vector<int> bpps = {1, 2, 4, 8, 16};
  const double rcf = 2.0;

  std::ostringstream out;
  out << "== Ablation: unprotected force updates (free-atomic bound), "
         "Compaq D=3, rc=2.0 ==\n\n";
  Table t({"B/P", "MPI t (s)", "hybrid (selected) t", "hybrid (colored) t",
           "hybrid (nolock) t", "nolock beats MPI?"});
  int wins_small_b = 0;
  for (int bpp : bpps) {
    perf::MeasureSpec mpi;
    mpi.D = 3;
    mpi.n = ctx.n_for(3);
    mpi.rc_factor = rcf;
    mpi.mode = perf::MeasureSpec::Mode::kMp;
    mpi.nprocs = 16;
    mpi.blocks_per_proc = bpp;
    mpi.iterations = ctx.iters;
    const double t_mpi =
        predict_paper_seconds(machine, perf::measure_run(mpi).run, 4);

    auto hybrid_time = [&](ReductionKind kind) {
      perf::MeasureSpec hyb = mpi;
      hyb.mode = perf::MeasureSpec::Mode::kHybrid;
      hyb.nprocs = 4;
      hyb.nthreads = 4;
      hyb.reduction = kind;
      return predict_paper_seconds(machine, perf::measure_run(hyb).run, 1);
    };
    const double t_sel = hybrid_time(ReductionKind::kSelectedAtomic);
    const double t_colored = hybrid_time(ReductionKind::kColored);
    const double t_nolock = hybrid_time(ReductionKind::kNoLock);
    const bool wins = t_nolock < t_mpi;
    if (wins && bpp <= 4) ++wins_small_b;
    t.add_row({std::to_string(bpp), Table::num(t_mpi, 3),
               Table::num(t_sel, 3), Table::num(t_colored, 3),
               Table::num(t_nolock, 3), wins ? "yes" : "no"});
  }
  out << t.render() << "\n";
  out << "Paper shape check: with locking removed the hybrid code beats\n"
      << "pure MPI for small B/P (" << wins_small_b
      << " of the B/P <= 4 points here), so a machine with a genuinely\n"
      << "free atomic would tip the Figure 8 comparison.\n"
      << "(The no-lock run computes wrong forces; it exists only to bound\n"
      << "the cost of protection, exactly as in the paper.  The colored\n"
      << "column is the *correct* realisation of that bound: conflict-free\n"
      << "color phases with plain updates and one extra barrier per color.)\n";
  emit("ablation_nolock.txt", out.str());
  return 0;
}
