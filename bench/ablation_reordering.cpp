// Sections 6.3 and 7.1 — what particle reordering buys, serially and
// under threads.  The paper reports serial gains of up to 30% (Sun, T3E)
// and 50% (CPQ); for the OpenMP code 15-20% (Sun) and 45-65% (CPQ), where
// it also improves *parallel* efficiency by easing cache-line contention.
#include <sstream>

#include "common.hpp"

using namespace hdem;
using namespace hdem::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchContext ctx;
  declare_common_options(cli, ctx);
  if (cli.finish()) return 0;
  calibrate_platforms(ctx);

  std::ostringstream out;
  out << "== Ablation: particle reordering gains ==\n"
         "   Speedup = t(random order) / t(cell order); the paper quotes\n"
         "   \"performance increases of up to 30% (Sun, T3E) and 50% (CPQ)\"\n"
         "   serially, and 15-20% (Sun) / 45-65% (CPQ) for the OpenMP code.\n\n";
  Table t({"Platform", "mode", "D", "rc", "t random (s)", "t reordered (s)",
           "speedup", "paper (same cell)"});
  for (const auto& platform : {"Sun", "T3E", "CPQ"}) {
    const auto& machine = ctx.machine(platform);
    auto serial_time = [&](int D, double rcf, bool reorder) {
      perf::MeasureSpec s;
      s.D = D;
      s.n = ctx.n_for(D);
      s.rc_factor = rcf;
      s.reorder = reorder;
      s.mode = perf::MeasureSpec::Mode::kSerial;
      s.iterations = ctx.iters;
      return predict_paper_seconds(machine, perf::measure_run(s).run, 1);
    };
    for (auto [D, rcf] : {std::pair{2, 1.5}, {3, 1.5}}) {
      const double sr = serial_time(D, rcf, false);
      const double so = serial_time(D, rcf, true);
      const double paper_speedup =
          perf::paper_serial_seconds(platform, D, rcf, false) /
          perf::paper_serial_seconds(platform, D, rcf, true);
      t.add_row({platform, "serial", std::to_string(D), Table::num(rcf, 1),
                 Table::num(sr, 2), Table::num(so, 2),
                 Table::num(sr / so, 2) + "x",
                 Table::num(paper_speedup, 2) + "x"});
    }
    if (platform == std::string("T3E")) continue;  // no threads on the T3E
    // OpenMP (T = 4) gain: also improves *parallel* efficiency (less
    // cache-line contention between threads).
    auto smp_time = [&](bool reorder) {
      perf::MeasureSpec s;
      s.D = 3;
      s.n = ctx.n_for(3);
      s.rc_factor = 1.5;
      s.reorder = reorder;
      s.mode = perf::MeasureSpec::Mode::kSmp;
      s.nthreads = 4;
      s.reduction = ReductionKind::kSelectedAtomic;
      s.iterations = ctx.iters;
      return predict_paper_seconds(machine, perf::measure_run(s).run, 1);
    };
    const double tr = smp_time(false), to = smp_time(true);
    t.add_row({platform, "OpenMP T=4", "3", "1.5", Table::num(tr, 2),
               Table::num(to, 2), Table::num(tr / to, 2) + "x",
               platform == std::string("CPQ") ? "1.45-1.65x" : "1.15-1.2x"});
  }
  out << t.render() << "\n";
  out << "Mechanism (measured, not assumed): cell-order reordering collapses\n"
      << "the link-gap histogram, cutting the modelled cache-miss\n"
      << "probability; the CPQ gains more because its fitted memory-penalty\n"
      << "share is larger.\n";
  emit("ablation_reordering.txt", out.str());
  return 0;
}
