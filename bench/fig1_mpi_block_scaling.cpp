// Figure 1 — "Scaling of performance for MPI block distribution on P
// processes using rc = 1.5 rmax", without particle reordering.
#include "mpi_scaling.hpp"

int main(int argc, char** argv) {
  return hdem::bench::run_mpi_scaling_bench(
      argc, argv, /*reorder=*/false, "fig1.txt",
      "Fig 1: MPI block-distribution speedup vs P/P0 (random order, rc=1.5)");
}
