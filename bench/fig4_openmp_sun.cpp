// Figure 4 — "Scaling of performance with number of threads T for OpenMP
// code on the Sun, D = 3".  The KAI Guide system implements atomic updates
// as software locks (very costly); array reductions saturate the node's
// memory bandwidth.
#include "openmp_scaling.hpp"

int main(int argc, char** argv) {
  return hdem::bench::run_openmp_scaling_bench(
      argc, argv, "Sun", {1, 2, 4, 8}, "fig4.txt",
      "Fig 4: OpenMP thread scaling on the Sun HPC 3500 (D=3, rc=1.5)",
      "Paper shape checks:\n"
      "  - atomic-all is by far the worst (software locks; the paper says\n"
      "    ~an order of magnitude on 4 threads and does not plot it)\n"
      "  - transpose does not scale well either (array reduction traffic\n"
      "    saturates memory bandwidth)\n"
      "  - selected-atomic is best but still limited by lock cost\n");
}
