// Figure 12 (extension) — Verlet skin lists: candidate links are built out
// to rc + skin and the list is reused until accumulated drift could close
// the widened gap, skipping the whole rebuild pipeline (binning, reorder,
// link generation — and on the mp path the migration check, the
// halo-template refresh and any shared-window republication) on every
// reused step.
//
// Two gated claims:
//   1. Bit-identity: the skin changes *when* lists rebuild, never *what*
//      the force pass computes.  Candidate sets are supersets and the pair
//      kernel distance-gates (non-contact links are exact no-ops), so with
//      the binning capacity pinned (--skin-cap keeps the cell geometry,
//      reorder permutation and traversal order identical) and a workload
//      whose rebuild schedules coincide — here: no post-init rebuild falls
//      inside the 120-step window at any swept skin — trajectories are
//      bit-identical across skin x driver x team size (DESIGN §3.7).
//   2. Throughput: on a settled workload whose drift invalidates the
//      skinless list every step, the best swept skin trades a slightly
//      larger candidate list for rebuilds every 2+ steps and must deliver
//      >= 1.3x steps/sec on this host.  A hot workload is reported
//      alongside: when per-step drift exceeds even the widened allowance
//      the skin only inflates the force pass and cannot pay.
//
// The cost model's amortised rebuild term works from measured counts
// (rebuilds / iterations), so its predicted rebuild-time drop across the
// sweep must track the host-measured rebuild-phase nanoseconds; the check
// gates the ratio within a factor of 2.  Results land in
// results/BENCH_skin.json; any gate failure exits nonzero.
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "core/serial_sim.hpp"
#include "driver/mp_sim.hpp"
#include "driver/smp_sim.hpp"

using namespace hdem;
using namespace hdem::bench;

namespace {

// Sorted-by-id snapshot of a shared-memory driver's store (the decomposed
// driver's gather_state already returns this shape).
template <int D>
std::vector<StateRecord<D>> snapshot_records(const ParticleStore<D>& store) {
  std::vector<StateRecord<D>> out(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    const auto id = static_cast<std::size_t>(store.id(i));
    out[id] = {store.id(i), store.pos(i), store.vel(i)};
  }
  return out;
}

template <int D>
bool records_identical(const std::vector<StateRecord<D>>& a,
                       const std::vector<StateRecord<D>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id ||
        std::memcmp(&a[i].pos, &b[i].pos, sizeof(Vec<D>)) != 0 ||
        std::memcmp(&a[i].vel, &b[i].vel, sizeof(Vec<D>)) != 0) {
      return false;
    }
  }
  return true;
}

struct IdentityRun {
  std::vector<StateRecord<2>> state;
  Counters counters;  // rank 0's / the driver's counters
};

// The identity workload: paper density, gentle velocities and a reduced dt
// so that 120 steps of measured drift stay below even the skinless
// allowance 0.5*(rc - rmax) — every run keeps its constructor-built list,
// so the rebuild schedules (which are bit-visible) coincide trivially
// while contacts still fire every step.
SimConfig<2> identity_config(double skin, double skin_cap) {
  SimConfig<2> cfg;
  cfg.box = Vec<2>(SimConfig<2>::paper_box_edge(4000));
  cfg.seed = 71;
  cfg.velocity_scale = 0.05;
  cfg.dt = 2.5e-4;
  cfg.skin_factor = skin;
  cfg.skin_cap_factor = skin_cap;
  return cfg;
}

IdentityRun run_identity_serial(double skin, double skin_cap,
                                std::span<const ParticleInit<2>> init,
                                int steps) {
  const auto cfg = identity_config(skin, skin_cap);
  SerialSim<2> sim(cfg, ElasticSphere{cfg.stiffness, cfg.diameter}, init);
  sim.run(static_cast<std::uint64_t>(steps));
  return {snapshot_records<2>(sim.store()), sim.counters()};
}

IdentityRun run_identity_smp(double skin, double skin_cap, int nthreads,
                             std::span<const ParticleInit<2>> init,
                             int steps) {
  const auto cfg = identity_config(skin, skin_cap);
  SmpSim<2> sim(cfg, ElasticSphere{cfg.stiffness, cfg.diameter}, init,
                nthreads, ReductionKind::kColored);
  sim.run(static_cast<std::uint64_t>(steps));
  return {snapshot_records<2>(sim.store()), sim.counters()};
}

IdentityRun run_identity_mp(double skin, double skin_cap, int nthreads,
                            std::span<const ParticleInit<2>> init,
                            int steps) {
  const auto cfg = identity_config(skin, skin_cap);
  const auto layout = DecompLayout<2>::make(4, 1);
  typename MpSim<2>::Options opts;
  opts.nthreads = nthreads;
  // The atomic-family reductions are not run-to-run reproducible at T > 1;
  // the identity gate pins the deterministic colored reduction.
  opts.reduction = ReductionKind::kColored;
  IdentityRun out;
  mp::run(4, [&](mp::Comm& comm) {
    MpSim<2> sim(cfg, layout, comm, ElasticSphere{cfg.stiffness, cfg.diameter},
                 init, opts);
    sim.run(static_cast<std::uint64_t>(steps));
    auto s = sim.gather_state();
    if (comm.rank() == 0) {
      out.state = std::move(s);
      out.counters = sim.counters();
    }
  });
  return out;
}

// steps/sec over the measured window (warmup excluded), best-of-reps.
perf::MeasuredRun measure_best(const perf::MeasureSpec& spec, int reps) {
  perf::MeasuredRun best = perf::measure_run(spec);
  for (int r = 1; r < reps; ++r) {
    perf::MeasuredRun m = perf::measure_run(spec);
    if (m.host_seconds < best.host_seconds) best = std::move(m);
  }
  return best;
}

double steps_per_sec(const perf::MeasuredRun& m) {
  return m.host_seconds > 0.0
             ? static_cast<double>(m.run.iterations) / m.host_seconds
             : 0.0;
}

// Host-measured rebuild-pipeline nanoseconds per iteration in the window.
double rebuild_ns_per_iter(const perf::RunMeasurement& run) {
  const double ns = static_cast<double>(
      run.agg.rebuild_bin_ns + run.agg.rebuild_reorder_ns +
      run.agg.rebuild_linkgen_ns + run.agg.rebuild_colorplan_ns);
  return run.iterations ? ns / static_cast<double>(run.iterations) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto steps = static_cast<int>(
      cli.integer("steps", 120, "identity-gate trajectory length"));
  const auto n_perf = static_cast<std::uint64_t>(
      cli.integer("n", 20'000, "particles for the throughput sweep (D=2)"));
  const auto iters = static_cast<std::uint64_t>(
      cli.integer("iters", 40, "measured iterations per throughput point"));
  const auto reps = static_cast<int>(
      cli.integer("reps", 3, "repetitions per point (best-of)"));
  if (cli.finish()) return 0;

  const double identity_skins[] = {0.0, 0.1, 0.3};
  const double kCap = 0.3;  // pinned binning capacity = max swept skin
  bool identity_ok = true;

  std::ostringstream out;
  out << "== Fig 12: Verlet skin lists (skin = delta/rc; candidates at "
         "rc*(1+skin)) ==\n\n";
  out << "Identity gate: " << steps << "-step trajectories, binning "
         "capacity pinned at rc*(1+" << kCap << ") for every run\n";
  Table ti({"skin", "driver", "T", "identical", "rebuilds", "skipped",
            "contacts", "links_core"});
  std::ostringstream json;
  json << "{\n  \"identity_gate\": [";

  const auto cfg0 = identity_config(0.0, kCap);
  const auto init = uniform_random_particles(cfg0, 4000);
  // Bit identity is a *per-driver* invariant: each driver/team combination
  // has its own summation order, so its skin-0 run is its own baseline.
  // (mp vs serial is a tolerance comparison elsewhere, not a bit one.)
  std::map<std::string, std::vector<StateRecord<2>>> baselines;
  std::uint64_t links_core_min = 0, links_core_max = 0;
  bool first = true;
  for (const double skin : identity_skins) {
    for (const char* driver : {"serial", "smp", "mp"}) {
      for (const int T : {1, 2, 4}) {
        if (std::strcmp(driver, "serial") == 0 && T > 1) continue;
        IdentityRun r;
        if (std::strcmp(driver, "serial") == 0) {
          r = run_identity_serial(skin, kCap, init, steps);
        } else if (std::strcmp(driver, "smp") == 0) {
          r = run_identity_smp(skin, kCap, T, init, steps);
        } else {
          r = run_identity_mp(skin, kCap, T, init, steps);
        }
        auto& ref = baselines[std::string(driver) + "/" + std::to_string(T)];
        if (ref.empty()) ref = r.state;
        const bool same = records_identical<2>(ref, r.state);
        // The workload must be non-trivial (contacts every step) and the
        // schedules must coincide: only the constructor's build, with
        // every subsequent step served off the reused list.
        const bool schedule_ok =
            r.counters.rebuilds == 1 && r.counters.contacts > 0 &&
            r.counters.rebuilds_skipped ==
                static_cast<std::uint64_t>(steps) - 1;
        identity_ok = identity_ok && same && schedule_ok;
        if (std::strcmp(driver, "serial") == 0) {
          if (skin == identity_skins[0]) links_core_min = r.counters.links_core;
          links_core_max = r.counters.links_core;
        }
        ti.add_row({Table::num(skin, 1), driver, std::to_string(T),
                    same && schedule_ok ? "yes" : "NO",
                    std::to_string(r.counters.rebuilds),
                    std::to_string(r.counters.rebuilds_skipped),
                    std::to_string(r.counters.contacts),
                    std::to_string(r.counters.links_core)});
        json << (first ? "" : ",") << "\n    {\"skin\": " << skin
             << ", \"driver\": \"" << driver << "\", \"nthreads\": " << T
             << ", \"steps\": " << steps
             << ", \"identical\": " << (same ? "true" : "false")
             << ", \"rebuilds\": " << r.counters.rebuilds
             << ", \"rebuilds_skipped\": " << r.counters.rebuilds_skipped
             << ", \"migrations_skipped\": " << r.counters.migrations_skipped
             << ", \"contacts\": " << r.counters.contacts
             << ", \"links_core\": " << r.counters.links_core << "}";
        first = false;
      }
    }
  }
  // The superset must be real: a wider skin must generate more candidates
  // (all of them exact no-ops in the force pass, or the rows above would
  // say NO).
  const bool superset_ok = links_core_max > links_core_min;
  identity_ok = identity_ok && superset_ok;
  out << ti.render() << "\n";
  out << "candidate links (serial): " << links_core_min << " at skin 0 -> "
      << links_core_max << " at skin 0.3 ("
      << (superset_ok ? "superset is non-trivial" : "NO SPREAD — GATE FAILS")
      << ")\n\n";

  // -- throughput sweep -------------------------------------------------------
  // settled: per-step drift just above the skinless allowance, so skin = 0
  // rebuilds every step and a modest skin halves (or better) the rebuild
  // frequency.  hot: drift exceeds even the widened allowances — the skin
  // cannot pay and the table shows it honestly.
  const double sweep_skins[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.5};
  struct Workload {
    const char* name;
    double velocity_scale;
  };
  const Workload workloads[] = {{"settled", 18.0}, {"hot", 60.0}};

  json << "\n  ],\n  \"throughput\": [";
  first = true;
  double best_speedup = 0.0, best_skin = 0.0;
  perf::MeasuredRun settled_base, settled_best;
  Table tp({"workload", "skin", "steps/s", "speedup", "rebuilds/iter",
            "links_core", "reuse"});
  for (const auto& w : workloads) {
    double base_sps = 0.0;
    for (const double skin : sweep_skins) {
      perf::MeasureSpec spec;
      spec.D = 2;
      spec.n = n_perf;
      spec.mode = perf::MeasureSpec::Mode::kSerial;
      spec.skin = skin;
      spec.velocity_scale = w.velocity_scale;
      spec.warmup = 2;
      spec.iterations = iters;
      const auto m = measure_best(spec, reps);
      const double sps = steps_per_sec(m);
      if (skin == 0.0) base_sps = sps;
      const double speedup = base_sps > 0.0 ? sps / base_sps : 0.0;
      const auto reuse = perf::reuse_summary(m.run.agg);
      if (std::strcmp(w.name, "settled") == 0) {
        if (skin == 0.0) settled_base = m;
        if (speedup > best_speedup) {
          best_speedup = speedup;
          best_skin = skin;
          settled_best = m;
        }
      }
      tp.add_row({w.name, Table::num(skin, 2), Table::num(sps, 1),
                  Table::num(speedup, 3) + "x",
                  Table::num(static_cast<double>(m.run.agg.rebuilds) /
                                 static_cast<double>(m.run.iterations),
                             2),
                  std::to_string(m.run.agg.links_core),
                  perf::reuse_line(reuse)});
      json << (first ? "" : ",") << "\n    {\"workload\": \"" << w.name
           << "\", \"skin\": " << skin << ", \"velocity_scale\": "
           << w.velocity_scale << ", \"steps_per_sec\": " << sps
           << ", \"speedup\": " << speedup
           << ", \"rebuilds\": " << m.run.agg.rebuilds
           << ", \"rebuilds_skipped\": " << m.run.agg.rebuilds_skipped
           << ", \"iterations\": " << m.run.iterations
           << ", \"links_core\": " << m.run.agg.links_core
           << ", \"mean_reuse_interval\": " << reuse.mean_reuse_interval
           << "}";
      first = false;
    }
  }
  out << tp.render() << "\n";
  const bool speedup_ok = best_speedup >= 1.3;
  out << "best settled speedup: " << Table::num(best_speedup, 3) << "x at skin "
      << Table::num(best_skin, 2) << " (gate: >= 1.3x) -> "
      << (speedup_ok ? "PASS" : "FAIL") << "\n\n";

  // -- mp reuse counters ------------------------------------------------------
  // The decomposed driver must convert every reused step into a skipped
  // migration check and a skipped halo-template refresh as well.
  perf::MeasureSpec mspec;
  mspec.D = 2;
  mspec.n = n_perf;
  mspec.mode = perf::MeasureSpec::Mode::kMp;
  mspec.nprocs = 2;
  mspec.blocks_per_proc = 2;
  mspec.skin = best_skin;
  mspec.velocity_scale = 18.0;
  mspec.warmup = 2;
  mspec.iterations = iters;
  const auto mp_run = perf::measure_run(mspec);
  const auto mp_reuse = perf::reuse_summary(mp_run.run.agg);
  // Ranks skip the same steps (the reuse decision is global), so the
  // merged counters keep the per-run value; all three must agree.
  const bool mp_ok =
      mp_run.run.agg.rebuilds_skipped > 0 &&
      mp_run.run.agg.migrations_skipped == mp_run.run.agg.rebuilds_skipped &&
      mp_run.run.agg.halo_rebuilds_skipped == mp_run.run.agg.rebuilds_skipped;
  out << "mp reuse (P=2, B/P=2, skin " << Table::num(best_skin, 2)
      << "): " << perf::reuse_line(mp_reuse) << " -> "
      << (mp_ok ? "migration + halo-template skips track list reuse"
                : "COUNTER MISMATCH")
      << "\n\n";

  // -- cost-model check -------------------------------------------------------
  // The model's rebuild term is amortised by the measured reuse interval
  // (rebuilds / iterations) and inflated by the measured per-rebuild
  // counts; its predicted drop from skin 0 to the best skin must track the
  // host-measured rebuild-phase time within a factor of 2.
  const auto model_rebuild = [](const perf::RunMeasurement& run) {
    return perf::CostModel::predict(perf::compaq_es40_cluster(), run).rebuild;
  };
  const double measured_0 = rebuild_ns_per_iter(settled_base.run);
  const double measured_b = rebuild_ns_per_iter(settled_best.run);
  const double modeled_0 = model_rebuild(settled_base.run);
  const double modeled_b = model_rebuild(settled_best.run);
  const double measured_ratio = measured_0 > 0.0 ? measured_b / measured_0 : 0.0;
  const double modeled_ratio = modeled_0 > 0.0 ? modeled_b / modeled_0 : 0.0;
  const double agreement =
      measured_ratio > 0.0 ? modeled_ratio / measured_ratio : 0.0;
  const bool model_ok = agreement >= 0.5 && agreement <= 2.0;
  out << "cost model: amortised rebuild term skin " << Table::num(best_skin, 2)
      << " / skin 0 = " << Table::num(modeled_ratio, 3)
      << " (modeled) vs " << Table::num(measured_ratio, 3)
      << " (host rebuild-phase ns); agreement " << Table::num(agreement, 2)
      << "x (tolerance 0.5-2.0x) -> " << (model_ok ? "PASS" : "FAIL") << "\n\n";

  json << "\n  ],\n  \"mp_reuse\": {\"skin\": " << best_skin
       << ", \"rebuilds_skipped\": " << mp_run.run.agg.rebuilds_skipped
       << ", \"migrations_skipped\": " << mp_run.run.agg.migrations_skipped
       << ", \"halo_rebuilds_skipped\": "
       << mp_run.run.agg.halo_rebuilds_skipped
       << ", \"window_republishes\": " << mp_run.run.agg.window_republishes
       << ", \"counters_consistent\": " << (mp_ok ? "true" : "false")
       << "},\n  \"model_check\": {\"measured_rebuild_ratio\": "
       << measured_ratio << ", \"modeled_rebuild_ratio\": " << modeled_ratio
       << ", \"agreement\": " << agreement
       << ", \"tolerance\": [0.5, 2.0], \"ok\": "
       << (model_ok ? "true" : "false")
       << "},\n  \"gates\": {\"identity\": "
       << (identity_ok ? "true" : "false")
       << ", \"best_settled_speedup\": " << best_speedup
       << ", \"best_skin\": " << best_skin
       << ", \"speedup_ok\": " << (speedup_ok ? "true" : "false")
       << ", \"model_ok\": " << (model_ok ? "true" : "false") << "}\n}\n";

  out << "Shape checks:\n"
      << "  - every identity row says yes with rebuilds=1: the skin's extra\n"
      << "    candidates are exact no-ops and only the rebuild schedule\n"
      << "    (held fixed here by construction) is bit-visible\n"
      << "  - settled speedup peaks at a small skin: the candidate list\n"
      << "    grows ~(1+skin)^2 while the rebuild term falls as\n"
      << "    1/interval, so a large skin gives the win back\n"
      << "  - hot speedups sit at or below 1x: no reuse interval to win\n"
      << "  - mp skips: migrations_skipped and halo_rebuilds_skipped equal\n"
      << "    rebuilds_skipped — the whole pipeline is skipped together\n";
  perf::save_artifact("BENCH_skin.json", json.str());
  out << "Per-configuration results written to results/BENCH_skin.json\n";
  emit("fig12.txt", out.str());
  if (!identity_ok || !speedup_ok || !model_ok || !mp_ok) {
    std::fputs("FAIL: skin identity/speedup/model gate\n", stderr);
    return 1;
  }
  return 0;
}
