// Figure 3 — "MPI performance vs number of blocks B for rc = 1.5 rmax":
// the cost of the block-cyclic load-balancing mechanism.  At a fixed large
// process count the number of blocks per process B/P is swept; in this
// load-balanced test system there is nothing to gain, so any change is
// pure overhead (except for residual cache effects — smaller blocks fit in
// cache, which shows up as the Sun's D = 2 uptick).
#include <sstream>

#include "common.hpp"
#include "util/decomp_cli.hpp"

using namespace hdem;
using namespace hdem::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchContext ctx;
  declare_common_options(cli, ctx);
  const auto decomp = declare_decomp_options(cli, {1, 2, 4, 8, 16, 32});
  if (cli.finish()) return 0;
  calibrate_platforms(ctx);

  struct Series {
    std::string platform;
    int nprocs;
  };
  const std::vector<Series> series = {{"Sun", 8}, {"T3E", 32}, {"CPQ", 16}};
  std::vector<int> bpps;
  for (const std::int64_t b : decomp.blocks_per_proc) {
    bpps.push_back(static_cast<int>(b));
  }

  std::ostringstream out;
  out << "== Fig 3: MPI performance vs blocks per process B/P (rc=1.5, "
         "reordered) ==\n\n";
  Table t({"Platform", "D", "P", "B/P", "model t (s)",
           "perf vs B/P=1"});
  AsciiPlot plot("Fig 3: normalised performance vs granularity", "B/P",
                 "t(B/P=1) / t(B/P)", 64, 18);
  plot.set_logx(true);
  for (const auto& s : series) {
    const auto& machine = ctx.machine(s.platform);
    for (int D : {2, 3}) {
      std::vector<double> xs, ys;
      double t1 = 0.0;
      for (int bpp : bpps) {
        perf::MeasureSpec spec;
        spec.D = D;
        spec.n = ctx.n_for(D);
        spec.rc_factor = 1.5;
        spec.mode = perf::MeasureSpec::Mode::kMp;
        spec.nprocs = s.nprocs;
        spec.blocks_per_proc = bpp;
        spec.iterations = ctx.iters;
        spec.rebalance = decomp.rebalance;
        spec.rebalance_threshold = decomp.rebalance_threshold;
        spec.shared_halo = decomp.shared_halo;
        spec.ranks_per_node = static_cast<int>(decomp.ranks_per_node);
        const auto m = perf::measure_run(spec);
        const double tp = predict_paper_seconds(
            machine, m.run, mpi_ranks_per_node(machine, s.nprocs));
        if (bpp == 1) t1 = tp;
        t.add_row({s.platform, std::to_string(D), std::to_string(s.nprocs),
                   std::to_string(bpp), Table::num(tp, 3),
                   Table::num(t1 / tp, 2)});
        xs.push_back(bpp);
        ys.push_back(t1 / tp);
      }
      plot.add_series({s.platform + " D=" + std::to_string(D), xs, ys});
    }
  }
  out << t.render() << "\n" << plot.render() << "\n";
  out << "Paper shape checks:\n"
      << "  - performance decreases with B/P (finer-grained parallelism\n"
      << "    costs more halo area and more messages), worst where\n"
      << "    communication crosses a real network (T3E, CPQ) and for D=3\n"
      << "  - Sun D=2 shows the residual cache effect: more blocks means\n"
      << "    smaller blocks that fit in cache\n";
  emit("fig3.txt", out.str());
  return 0;
}
