// Table 1 — "Time per iteration (seconds) on P0 processors": the base
// serial time of the benchmark system (one million identical elastic
// spheres, uniform random order, no particle reordering) on the Sun HPC
// 3500, Cray T3E-900 and Compaq ES40.
//
// We run the real serial code (instrumented), calibrate the three
// platforms' kernel constants against Tables 1 AND 2 jointly, and report
// the model's reconstruction of Table 1 next to the paper's numbers.  The
// fit has 4 parameters per platform against 8 observations, so agreement
// is a meaningful consistency check, not an identity.
#include <sstream>

#include "common.hpp"

using namespace hdem;
using namespace hdem::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchContext ctx;
  declare_common_options(cli, ctx);
  if (cli.finish()) return 0;

  calibrate_platforms(ctx);

  std::ostringstream out;
  out << "== Table 1: time per iteration (s), 1M particles, random particle "
         "order ==\n\n";
  out << calibration_report(ctx);

  Table t({"Platform", "D", "rc/rmax", "paper (s)", "model (s)", "rel err",
           "host ms/iter (n=" + std::to_string(ctx.n3) + ")"});
  for (const auto& platform : {"Sun", "T3E", "CPQ"}) {
    for (auto [D, rcf] : {std::pair{2, 1.5}, {2, 2.0}, {3, 1.5}, {3, 2.0}}) {
      perf::MeasureSpec s;
      s.D = D;
      s.n = ctx.n_for(D);
      s.rc_factor = rcf;
      s.reorder = false;
      s.mode = perf::MeasureSpec::Mode::kSerial;
      s.iterations = ctx.iters;
      const auto m = perf::measure_run(s);
      const double model =
          predict_paper_seconds(ctx.machine(platform), m.run, 1);
      const double paper =
          perf::paper_serial_seconds(platform, D, rcf, /*reordered=*/false);
      t.add_row({platform, std::to_string(D), Table::num(rcf, 1),
                 Table::num(paper, 2), Table::num(model, 2),
                 Table::num(100.0 * (model - paper) / paper, 1) + "%",
                 Table::num(1e3 * m.host_seconds_per_iter(), 1)});
    }
  }
  out << t.render() << "\n";
  out << "Paper shape checks:\n"
      << "  - CPQ fastest, T3E slowest on every row (8-byte default\n"
      << "    integers load the T3E memory system; absorbed in its fitted\n"
      << "    t_pair/t_mem)\n"
      << "  - larger cutoff costs more everywhere, more in 3-D than 2-D\n";
  emit("table1.txt", out.str());
  return 0;
}
