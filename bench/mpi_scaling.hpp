// Shared implementation of Figures 1 and 2: scaling of the pure MPI block
// distribution (B = P) with the number of processes, normalised to each
// platform's reference process count P0, with or without particle
// reordering.
#pragma once

#include <map>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "util/decomp_cli.hpp"
#include "util/halo_cli.hpp"

namespace hdem::bench {

struct ScalingSeries {
  std::string platform;
  int D;
  int p0;
  std::vector<int> procs;
};

inline int run_mpi_scaling_bench(int argc, char** argv, bool reorder,
                                 const std::string& figure,
                                 const std::string& title) {
  Cli cli(argc, argv);
  BenchContext ctx;
  declare_common_options(cli, ctx);
  const auto decomp = declare_decomp_options(cli, {1});
  const auto halo = declare_halo_options(cli);
  if (cli.finish()) return 0;
  calibrate_platforms(ctx);

  // The paper's process counts: T3E runs start at P0 = 8 (memory limits),
  // the Sun has 8 CPUs, the Compaq cluster 5 x 4 CPUs.
  const std::vector<ScalingSeries> series = {
      {"Sun", 2, 1, {1, 2, 4, 8}},      {"Sun", 3, 1, {1, 2, 4, 8}},
      {"T3E", 2, 8, {8, 16, 32, 64}},   {"T3E", 3, 8, {8, 16, 32, 64}},
      {"CPQ", 2, 1, {1, 2, 4, 8, 16, 20}},
      {"CPQ", 3, 1, {1, 2, 4, 8, 16, 20}},
  };

  // Measure each distinct (D, P) once; predictions per platform reuse it.
  std::map<std::pair<int, int>, perf::RunMeasurement> measured;
  for (const auto& s : series) {
    for (int p : s.procs) {
      const auto key = std::make_pair(s.D, p);
      if (measured.count(key)) continue;
      perf::MeasureSpec spec;
      spec.D = s.D;
      spec.n = ctx.n_for(s.D);
      spec.rc_factor = 1.5;  // the paper's Figures 1-3 use rc = 1.5 rmax
      spec.reorder = reorder;
      spec.mode = perf::MeasureSpec::Mode::kMp;
      spec.nprocs = p;
      spec.blocks_per_proc = static_cast<int>(decomp.bpp());
      spec.iterations = ctx.iters;
      spec.rebalance = decomp.rebalance;
      spec.rebalance_threshold = decomp.rebalance_threshold;
      spec.shared_halo = decomp.shared_halo;
      spec.ranks_per_node = static_cast<int>(decomp.ranks_per_node);
      spec.halo_delta = halo.delta;
      spec.halo_coalesce = halo.coalesce;
      measured.emplace(key, perf::measure_run(spec).run);
    }
  }

  std::ostringstream out;
  out << "== " << title << " ==\n\n";
  Table t({"Platform", "D", "P", "P/P0", "model t (s)", "speedup", "eff"});
  AsciiPlot plot(title, "P/P0", "speedup t(P0)/t(P)", 64, 18);
  plot.set_logx(true);
  for (const auto& s : series) {
    const auto& machine = ctx.machine(s.platform);
    std::vector<double> xs, ys;
    double t0 = 0.0;
    for (int p : s.procs) {
      const auto& run = measured.at({s.D, p});
      const double tp = predict_paper_seconds(
          machine, run, mpi_ranks_per_node(machine, p));
      if (p == s.p0) t0 = tp;
      const double speedup = t0 > 0.0 ? t0 / tp : 0.0;
      const double rel = static_cast<double>(p) / s.p0;
      t.add_row({s.platform, std::to_string(s.D), std::to_string(p),
                 Table::num(rel, 0), Table::num(tp, 3),
                 Table::num(speedup, 2), Table::num(speedup / rel, 2)});
      xs.push_back(rel);
      ys.push_back(speedup);
    }
    plot.add_series({s.platform + " D=" + std::to_string(s.D), xs, ys});
  }
  out << t.render() << "\n" << plot.render() << "\n";
  if (!reorder) {
    out << "Paper shape checks (Fig 1):\n"
        << "  - \"surprisingly good scaling, with efficiencies actually in\n"
        << "    excess of one\": poor cache use of the random order benefits\n"
        << "    from aggregate cache as P grows (strongest on the 96 KB T3E)\n"
        << "  - CPQ efficiency jumps past P = 4 when extra boxes add memory\n"
        << "    systems\n";
  } else {
    out << "Paper shape checks (Fig 2):\n"
        << "  - absolute performance better than Fig 1 everywhere, but\n"
        << "    parallel efficiencies reduced (less aggregate-cache benefit)\n"
        << "  - CPQ D = 2 still gains efficiency past one box (memory\n"
        << "    bandwidth)\n";
  }
  emit(figure, out.str());
  return 0;
}

}  // namespace hdem::bench
