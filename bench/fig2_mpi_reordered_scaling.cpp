// Figure 2 — "Scaling of MPI block distribution with particle reordering
// using rc = 1.5 rmax".
#include "mpi_scaling.hpp"

int main(int argc, char** argv) {
  return hdem::bench::run_mpi_scaling_bench(
      argc, argv, /*reorder=*/true, "fig2.txt",
      "Fig 2: MPI block-distribution speedup vs P/P0 (reordered, rc=1.5)");
}
