// Host-side kernel microbenchmarks (google-benchmark): regression tracking
// for the hot paths — force loop over links, link generation, binning,
// reordering, halo packing and the atomic accumulate.
#include <benchmark/benchmark.h>

#include "core/boundary.hpp"
#include "core/cell_grid.hpp"
#include "core/dynamics.hpp"
#include "core/force_model.hpp"
#include "core/init.hpp"
#include "core/link_list.hpp"
#include "mp/indexed.hpp"
#include "reduction/force_pass.hpp"
#include "smp/thread_team.hpp"
#include "util/simd.hpp"

namespace hdem {
namespace {

struct System {
  SimConfig<3> cfg;
  Boundary<3> bc;
  ParticleStore<3> store;
  CellGrid<3> grid;
  LinkList list;

  explicit System(std::uint64_t n, bool reorder) {
    cfg.box = Vec<3>(SimConfig<3>::paper_box_edge(n));
    cfg.reorder = reorder;
    bc = Boundary<3>(cfg.bc, cfg.box);
    for (const auto& p : uniform_random_particles(cfg, n)) {
      store.push_back(p.pos, p.vel);
    }
    std::array<bool, 3> wrap{};
    wrap.fill(true);
    grid.configure(Vec<3>{}, cfg.box, cfg.cutoff(), wrap);
    grid.bin(store.positions(), store.size());
    if (reorder) {
      store.apply_permutation(grid.order(), store.size());
      grid.reset_order_to_identity();
    }
    rebuild_links();
  }

  void rebuild_links() {
    auto disp = [this](const Vec<3>& a, const Vec<3>& b) {
      return bc.displacement(a, b);
    };
    build_links(list, grid, store.cpositions(), store.size(), cfg.cutoff(),
                disp);
  }
};

// System, templated over dimension, for the SIMD width series (always
// cell-ordered — the layout the batched kernel's vector gathers assume in
// production).
template <int D>
struct SystemD {
  SimConfig<D> cfg;
  Boundary<D> bc;
  ParticleStore<D> store;
  CellGrid<D> grid;
  LinkList list;

  explicit SystemD(std::uint64_t n) {
    cfg.box = Vec<D>(SimConfig<D>::paper_box_edge(n));
    bc = Boundary<D>(cfg.bc, cfg.box);
    for (const auto& p : uniform_random_particles(cfg, n)) {
      store.push_back(p.pos, p.vel);
    }
    std::array<bool, D> wrap{};
    wrap.fill(true);
    grid.configure(Vec<D>{}, cfg.box, cfg.cutoff(), wrap);
    grid.bin(store.positions(), store.size());
    store.apply_permutation(grid.order(), store.size());
    grid.reset_order_to_identity();
    auto disp = [this](const Vec<D>& a, const Vec<D>& b) {
      return bc.displacement(a, b);
    };
    build_links(list, grid, store.cpositions(), store.size(), cfg.cutoff(),
                disp);
  }
};

// Per-width ns/link of the batched pair kernel (args: n, model, width;
// model 0 = elastic, 1 = dissipative).  Widths the build or CPU cannot
// dispatch are skipped rather than silently clamped.
template <int D>
void BM_SimdForceLoop(benchmark::State& state) {
  const int width = static_cast<int>(state.range(2));
  if (width > 1 &&
      (width > simd::kMaxWidth || !simd::cpu_supports_width(width))) {
    state.SkipWithError("SIMD width not supported by this build/CPU");
    return;
  }
  SystemD<D> sys(static_cast<std::uint64_t>(state.range(0)));
  const PairDisp<D> disp = sys.bc.pair_disp();
  const ElasticSphere elastic{sys.cfg.stiffness, sys.cfg.diameter};
  const DissipativeSphere dissipative{sys.cfg.stiffness, 1.0,
                                      sys.cfg.diameter};
  const bool use_elastic = state.range(1) == 0;
  simd::set_dispatch_width(width);
  for (auto _ : state) {
    zero_forces(sys.store);
    const double pe =
        use_elastic ? accumulate_forces<D>(sys.list.core(), sys.store,
                                           elastic, disp, true, 1.0)
                    : accumulate_forces<D>(sys.list.core(), sys.store,
                                           dissipative, disp, true, 1.0);
    benchmark::DoNotOptimize(pe);
  }
  simd::set_dispatch_width(0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sys.list.size()));
  state.counters["links"] = static_cast<double>(sys.list.size());
  state.SetLabel(std::string(use_elastic ? "elastic" : "dissipative") +
                 "/w" + std::to_string(width));
}
BENCHMARK_TEMPLATE(BM_SimdForceLoop, 2)
    ->ArgNames({"n", "model", "W"})
    ->ArgsProduct({{30000}, {0, 1}, {1, 2, 4}});
BENCHMARK_TEMPLATE(BM_SimdForceLoop, 3)
    ->ArgNames({"n", "model", "W"})
    ->ArgsProduct({{20000}, {0, 1}, {1, 2, 4}});

void BM_ForceLoop(benchmark::State& state) {
  System sys(static_cast<std::uint64_t>(state.range(0)), state.range(1) != 0);
  const ElasticSphere model{sys.cfg.stiffness, sys.cfg.diameter};
  auto disp = [&](const Vec<3>& a, const Vec<3>& b) {
    return sys.bc.displacement(a, b);
  };
  for (auto _ : state) {
    zero_forces(sys.store);
    const double pe = accumulate_forces<3>(sys.list.core(), sys.store, model,
                                           disp, true, 1.0);
    benchmark::DoNotOptimize(pe);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sys.list.size()));
  state.counters["links"] = static_cast<double>(sys.list.size());
}
BENCHMARK(BM_ForceLoop)
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Args({100000, 1});

// Threaded force pass across the reduction strategies (args: n, strategy
// index into kAllReductionKinds, team size).  The colored strategy's
// phased conflict-free schedule should beat selected-atomic once several
// threads contend for the boundary particles; nolock is the incorrect
// free-atomic bound it is chasing.
void BM_SmpForcePass(benchmark::State& state) {
  System sys(static_cast<std::uint64_t>(state.range(0)), true);
  const auto kind =
      kAllReductionKinds[static_cast<std::size_t>(state.range(1))];
  const int threads = static_cast<int>(state.range(2));
  smp::ThreadTeam team(threads);
  auto acc = make_accumulator<3>(kind);
  prepare_accumulator<3>(acc, threads, sys.list, sys.store.size());
  const ElasticSphere model{sys.cfg.stiffness, sys.cfg.diameter};
  auto disp = [&](const Vec<3>& a, const Vec<3>& b) {
    return sys.bc.displacement(a, b);
  };
  for (auto _ : state) {
    const double pe =
        dispatch_force_pass<3>(acc, team, sys.list, sys.store, model, disp);
    benchmark::DoNotOptimize(pe);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sys.list.size()));
  state.SetLabel(to_string(kind));
}
BENCHMARK(BM_SmpForcePass)
    ->ArgNames({"n", "strategy", "T"})
    ->ArgsProduct({{20000},
                   {0, 1, 2, 3, 4, 5, 6},  // kAllReductionKinds order
                   {1, 4}})
    ->Args({20000, 1, 8})   // selected-atomic at higher contention
    ->Args({20000, 6, 8})   // colored at higher contention
    ->UseRealTime();

void BM_LinkBuild(benchmark::State& state) {
  System sys(static_cast<std::uint64_t>(state.range(0)), true);
  for (auto _ : state) {
    sys.rebuild_links();
    benchmark::DoNotOptimize(sys.list.links.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LinkBuild)->Arg(20000)->Arg(100000);

void BM_CellBinning(benchmark::State& state) {
  System sys(static_cast<std::uint64_t>(state.range(0)), false);
  for (auto _ : state) {
    sys.grid.bin(sys.store.positions(), sys.store.size());
    benchmark::DoNotOptimize(sys.grid.order().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CellBinning)->Arg(20000)->Arg(100000);

void BM_Reorder(benchmark::State& state) {
  System sys(static_cast<std::uint64_t>(state.range(0)), false);
  for (auto _ : state) {
    sys.grid.bin(sys.store.positions(), sys.store.size());
    sys.store.apply_permutation(sys.grid.order(), sys.store.size());
    benchmark::DoNotOptimize(sys.store.positions().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Reorder)->Arg(20000)->Arg(100000);

void BM_PositionUpdate(benchmark::State& state) {
  System sys(static_cast<std::uint64_t>(state.range(0)), true);
  for (auto _ : state) {
    const double v = kick_drift(sys.store, sys.store.size(), sys.cfg.dt,
                                Vec<3>{}, sys.bc);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PositionUpdate)->Arg(20000)->Arg(100000);

void BM_HaloPack(benchmark::State& state) {
  System sys(20000, true);
  // A template covering ~10% of the particles, strided.
  mp::IndexedType idx;
  for (std::size_t i = 0; i < sys.store.size(); i += 10) {
    idx.add(static_cast<std::int32_t>(i));
  }
  std::vector<Vec<3>> out(idx.count());
  for (auto _ : state) {
    idx.pack(sys.store.cpositions(), std::span<Vec<3>>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(idx.count()));
}
BENCHMARK(BM_HaloPack);

void BM_AtomicAdd(benchmark::State& state) {
  alignas(64) double target = 0.0;
  for (auto _ : state) {
    smp::atomic_add(target, 1.0);
  }
  benchmark::DoNotOptimize(target);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AtomicAdd);

}  // namespace
}  // namespace hdem

BENCHMARK_MAIN();
