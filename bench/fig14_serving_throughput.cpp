// Figure 14 (extension) — multi-tenant serving throughput: many
// independent DEM jobs multiplexed over one shared thread team by the
// work-stealing, step-quantum scheduler in src/serve.
//
// Gated claims:
//   1. Bit-identity: multiplexing never moves a bit of any trajectory.
//      A mixed 8-job trace served at team size {1, 2, 4} x quantum
//      {16, 64} produces, for every job, checkpoint bytes identical to the
//      same spec run standalone.
//   2. Throughput: at saturation the scheduler's priced makespan beats the
//      naive sequential baseline (one job at a time on one core) by >= 2x
//      at T = 4.  Pricing uses the *measured* schedule: each worker's
//      accumulated quantum cost in deterministic work units (force
//      evaluations + position updates, the same bit-reproducible wall-time
//      proxy the rebalancer prices blocks with); the sequential baseline's
//      makespan is the total work on one worker.  Wall-clock jobs/sec for
//      all three architectures (sequential, one-team-per-job, scheduler)
//      is reported alongside but not gated — on this repo's oversubscribed
//      single-core CI hosts wall-clock parallel speedup measures OS
//      scheduler skew, not the schedule (same approach as the fig9 gates).
//   3. Latency: small interactive jobs submitted against a saturating
//      batch backlog complete within 2x their isolated cost (p99 on the
//      cost clock: latency = (finish_cost - submit_cost) / workers,
//      isolated = the job's own cost units).  This is what the per-class
//      priority lanes and the step-quantum slicing buy.
//
// Results land in results/BENCH_serving.json; any gate failure exits
// nonzero.
#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "serve/scheduler.hpp"

using namespace hdem;
using namespace hdem::bench;

namespace {

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct ScopedFile {
  std::string path;
  ~ScopedFile() { std::filesystem::remove(path); }
};

// The mixed identity/throughput trace: uneven sizes and budgets across all
// three scenarios so the schedule actually has imbalance to absorb.
std::vector<serve::JobSpec> mixed_trace(std::uint64_t jobs, std::uint64_t n,
                                        std::uint64_t steps,
                                        std::uint64_t seed) {
  const serve::Scenario cycle[3] = {serve::Scenario::kUniform,
                                    serve::Scenario::kClustered,
                                    serve::Scenario::kSettled};
  std::vector<serve::JobSpec> specs;
  for (std::uint64_t i = 0; i < jobs; ++i) {
    serve::JobSpec spec;
    spec.job_id = i;
    spec.scenario = cycle[i % 3];
    spec.n = n / 2 + (n / 4) * (i % 3);
    spec.steps = steps / 2 + (steps / 4) * (i % 3);
    spec.seed = seed;
    specs.push_back(spec);
  }
  return specs;
}

// Standalone reference: the spec run to completion in isolation.  Returns
// the checkpoint bytes and the job's total cost units.
struct SoloRun {
  std::string bytes;
  std::uint64_t cost_units = 0;
  double wall_seconds = 0.0;
};

SoloRun run_solo(serve::JobSpec spec, const std::string& path) {
  spec.checkpoint_path = path;
  ScopedFile cleanup{path};
  auto job = serve::make_job(spec);
  Timer t;
  job->advance(spec.steps);
  SoloRun out;
  out.wall_seconds = t.seconds();
  out.cost_units = job->cost_units();
  out.bytes = file_bytes(path);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  // Defaults sized so every job spans many quanta: the stolen schedule
  // can only balance at quantum granularity, so coarse jobs (few quanta)
  // turn the throughput gate into a measurement of OS timeslicing luck.
  const auto jobs = static_cast<std::uint64_t>(
      cli.integer("jobs", 12, "jobs in the identity/throughput trace"));
  const auto n = static_cast<std::uint64_t>(
      cli.integer("n", 800, "base particle count (jobs span n/2 .. n)"));
  const auto steps = static_cast<std::uint64_t>(cli.integer(
      "steps", 192, "base step budget (jobs span steps/2 .. steps)"));
  const auto n_small = static_cast<std::uint64_t>(
      cli.integer("n-small", 400, "latency probe particle count"));
  const auto steps_small = static_cast<std::uint64_t>(
      cli.integer("steps-small", 192, "latency probe step budget"));
  const auto smalls = static_cast<std::uint64_t>(
      cli.integer("smalls", 4, "interactive latency probes"));
  const auto seed =
      static_cast<std::uint64_t>(cli.integer("seed", 2026, "trace seed"));
  if (cli.finish()) return 0;

  std::ostringstream out;
  out << "== Fig 14: multi-tenant serving over one shared thread team ==\n\n";
  std::ostringstream json;

  const std::string dir = perf::results_dir();
  const auto ckp = [&dir](const std::string& tag, std::uint64_t id) {
    return (std::filesystem::path(dir) /
            ("fig14_" + tag + "_" + std::to_string(id) + ".ckp"))
        .string();
  };

  // -- standalone references --------------------------------------------------
  const auto specs = mixed_trace(jobs, n, steps, seed);
  std::vector<SoloRun> solo;
  double wall_sequential = 0.0;
  std::uint64_t total_cost = 0;
  for (const auto& s : specs) {
    solo.push_back(run_solo(s, ckp("solo", s.job_id)));
    wall_sequential += solo.back().wall_seconds;
    total_cost += solo.back().cost_units;
  }

  // -- identity gate ----------------------------------------------------------
  out << "Identity gate: " << jobs << " mixed jobs (uniform/clustered/"
      << "settled), served checkpoints vs standalone runs\n";
  Table ti({"T", "quantum", "identical", "quanta", "steals", "balance"});
  json << "{\n  \"identity_gate\": [";
  bool identity_ok = true;
  bool first = true;
  // Per-(T, quantum) priced makespans for the throughput table below.
  struct SchedRun {
    int workers;
    std::uint64_t quantum;
    serve::ServeStats stats;
    double wall_seconds;
  };
  std::vector<SchedRun> sched_runs;
  for (const int T : {1, 2, 4}) {
    for (const std::uint64_t quantum : {std::uint64_t{16}, std::uint64_t{64}}) {
      smp::ThreadTeam team(T);
      serve::Scheduler sched(team, {.quantum_steps = quantum});
      std::vector<ScopedFile> files;
      files.reserve(specs.size());  // no reallocation: dtor deletes the file
      std::vector<std::future<serve::JobResult>> futs;
      for (const auto& s : specs) {
        serve::JobSpec spec = s;
        spec.checkpoint_path = ckp("mux", s.job_id);
        files.push_back({spec.checkpoint_path});
        futs.push_back(sched.submit(serve::make_job(spec)));
      }
      Timer t;
      sched.drain();
      const double wall = t.seconds();
      bool same = true;
      for (std::size_t i = 0; i < specs.size(); ++i) {
        futs[i].get();
        same = same && file_bytes(files[i].path) == solo[i].bytes;
      }
      identity_ok = identity_ok && same;
      const auto stats = sched.stats();
      const auto summary = serve::serve_summary(stats);
      sched_runs.push_back({T, quantum, stats, wall});
      ti.add_row({std::to_string(T), std::to_string(quantum),
                  same ? "yes" : "NO", std::to_string(stats.quanta),
                  std::to_string(stats.steals),
                  T > 1 ? Table::num(summary.balance, 3) : "-"});
      json << (first ? "" : ",") << "\n    {\"workers\": " << T
           << ", \"quantum_steps\": " << quantum
           << ", \"jobs\": " << jobs
           << ", \"identical\": " << (same ? "true" : "false")
           << ", \"quanta\": " << stats.quanta
           << ", \"steals\": " << stats.steals
           << ", \"balance\": " << summary.balance
           << ", \"wall_seconds\": " << wall << "}";
      first = false;
    }
  }
  out << ti.render() << "\n";
  out << "identity: " << (identity_ok ? "PASS" : "FAIL") << "\n\n";

  // -- one-team-per-job baseline ----------------------------------------------
  // Each job gets its own 4-thread colored SmpSim, run one after another —
  // the architecture the scheduler replaces.  Fork/join episodes per step
  // are its structural overhead; the scheduler's jobs run the serial
  // engine (zero per-step regions) and parallelise across jobs instead.
  double wall_team = 0.0;
  std::uint64_t team_regions = 0;
  std::uint64_t team_steps = 0;
  for (const auto& s : specs) {
    serve::JobSpec spec = s;
    spec.inner_threads = 4;
    spec.checkpoint_path = ckp("team", s.job_id);
    ScopedFile cleanup{spec.checkpoint_path};
    auto job = serve::make_job(spec);
    Timer t;
    job->advance(spec.steps);
    wall_team += t.seconds();
    team_regions += job->counters().parallel_regions;
    team_steps += spec.steps;
  }

  // -- throughput gate --------------------------------------------------------
  // Priced makespan of the measured schedule: max per-worker accumulated
  // cost.  Sequential baseline: all work on one worker.
  out << "Throughput at saturation (" << jobs << " jobs, total "
      << total_cost << " cost units):\n";
  Table tt({"architecture", "T", "quantum", "priced makespan",
            "priced speedup", "wall jobs/s"});
  tt.add_row({"sequential", "1", "-", std::to_string(total_cost),
              Table::num(1.0, 2),
              Table::num(static_cast<double>(jobs) / wall_sequential, 2)});
  tt.add_row({"team-per-job", "4", "-", std::to_string(total_cost / 4),
              "4.00 - sync",
              Table::num(static_cast<double>(jobs) / wall_team, 2)});
  double speedup_t4 = 0.0;
  json << "\n  ],\n  \"throughput\": {\"total_cost_units\": " << total_cost
       << ", \"sequential_wall_seconds\": " << wall_sequential
       << ", \"team_per_job_wall_seconds\": " << wall_team
       << ", \"team_per_job_regions_per_step\": "
       << (team_steps > 0
               ? static_cast<double>(team_regions) /
                     static_cast<double>(team_steps)
               : 0.0)
       << ",\n    \"scheduler\": [";
  first = true;
  for (const auto& r : sched_runs) {
    std::uint64_t makespan = 0;
    for (std::uint64_t c : r.stats.worker_cost_units) {
      makespan = std::max(makespan, c);
    }
    const double speedup = makespan > 0 ? static_cast<double>(total_cost) /
                                              static_cast<double>(makespan)
                                        : 0.0;
    if (r.workers == 4 && r.quantum == 16) speedup_t4 = speedup;
    tt.add_row({"scheduler", std::to_string(r.workers),
                std::to_string(r.quantum), std::to_string(makespan),
                Table::num(speedup, 2),
                Table::num(static_cast<double>(jobs) / r.wall_seconds, 2)});
    json << (first ? "" : ",") << "\n      {\"workers\": " << r.workers
         << ", \"quantum_steps\": " << r.quantum
         << ", \"priced_makespan\": " << makespan
         << ", \"priced_speedup\": " << speedup
         << ", \"wall_jobs_per_sec\": "
         << static_cast<double>(jobs) / r.wall_seconds << "}";
    first = false;
  }
  const bool throughput_ok = speedup_t4 >= 2.0;
  out << tt.render() << "\n";
  out << "priced speedup at T=4, quantum 16: " << Table::num(speedup_t4, 2)
      << "x (gate: >= 2x vs sequential) -> "
      << (throughput_ok ? "PASS" : "FAIL") << "\n\n";

  // -- latency gate -----------------------------------------------------------
  // Saturate T=4 with batch work, then submit interactive probes from a
  // replayer thread as the backlog drains; each probe's completion latency
  // on the cost clock must stay within 2x its isolated cost.
  const int T_lat = 4;
  const std::uint64_t quantum_lat = 16;
  serve::JobSpec probe_spec;
  probe_spec.scenario = serve::Scenario::kUniform;
  probe_spec.n = n_small;
  probe_spec.steps = steps_small;
  probe_spec.deadline = serve::DeadlineClass::kInteractive;
  probe_spec.seed = seed;
  probe_spec.job_id = 1000;
  const std::uint64_t isolated =
      run_solo(probe_spec, ckp("probe", probe_spec.job_id)).cost_units;

  smp::ThreadTeam team(T_lat);
  serve::Scheduler sched(team, {.quantum_steps = quantum_lat});
  std::vector<std::future<serve::JobResult>> batch_futs;
  for (std::uint64_t i = 0; i < 2 * jobs; ++i) {
    serve::JobSpec spec = specs[i % specs.size()];
    spec.job_id = 100 + i;
    batch_futs.push_back(sched.submit(serve::make_job(spec)));
  }
  std::vector<std::future<serve::JobResult>> probe_futs(smalls);
  std::thread replayer([&] {
    // A closed-loop interactive client: one outstanding probe at a time,
    // submissions staggered across the backlog's drain on the cost clock.
    // (Open-loop submission would measure probe-vs-probe queueing whenever
    // the replayer thread gets scheduled late, not probe-vs-batch.)
    const std::uint64_t backlog = 2 * total_cost;
    for (std::uint64_t i = 0; i < smalls; ++i) {
      const std::uint64_t mark = backlog * (i + 1) / (2 * (smalls + 1));
      while (sched.cost_clock() < mark) std::this_thread::yield();
      if (i > 0) probe_futs[i - 1].wait();
      serve::JobSpec spec = probe_spec;
      spec.job_id = 1000 + i;
      probe_futs[i] = sched.submit(serve::make_job(spec));
    }
    sched.close();
  });
  std::thread server([&] { sched.run(); });
  replayer.join();
  server.join();
  for (auto& f : batch_futs) f.get();

  std::vector<double> ratios;
  for (auto& f : probe_futs) {
    const auto r = f.get();
    const double latency =
        static_cast<double>(r.finish_cost - r.submit_cost) /
        static_cast<double>(T_lat);
    ratios.push_back(latency / static_cast<double>(isolated));
  }
  std::sort(ratios.begin(), ratios.end());
  const auto pct = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(ratios.size() - 1) + 0.5);
    return ratios[std::min(idx, ratios.size() - 1)];
  };
  const double p50 = pct(0.50), p99 = pct(0.99);
  const bool latency_ok = p99 <= 2.0;
  out << "Interactive latency under a saturating batch backlog (T=" << T_lat
      << ", quantum " << quantum_lat << ", " << smalls
      << " probes of " << isolated << " cost units each):\n"
      << "  completion latency / isolated cost: p50 = " << Table::num(p50, 2)
      << "x, p99 = " << Table::num(p99, 2)
      << "x (gate: p99 <= 2x) -> " << (latency_ok ? "PASS" : "FAIL")
      << "\n  " << perf::serve_line(serve::serve_summary(sched.stats()))
      << "\n\n";

  json << "\n    ]\n  },\n  \"latency\": {\"workers\": " << T_lat
       << ", \"quantum_steps\": " << quantum_lat
       << ", \"probes\": " << smalls
       << ", \"isolated_cost_units\": " << isolated
       << ", \"p50_ratio\": " << p50 << ", \"p99_ratio\": " << p99
       << ", \"ok\": " << (latency_ok ? "true" : "false")
       << "},\n  \"gates\": {\"identity\": "
       << (identity_ok ? "true" : "false")
       << ", \"throughput\": " << (throughput_ok ? "true" : "false")
       << ", \"latency\": " << (latency_ok ? "true" : "false") << "}\n}\n";

  out << "Shape checks:\n"
      << "  - every identity row says yes: step-quantum multiplexing and\n"
      << "    work stealing never move a bit of any trajectory\n"
      << "  - priced speedup grows with T and balance stays near 1: the\n"
      << "    stolen schedule spreads the mixed trace evenly\n"
      << "  - interactive probes ride the priority lanes to ~1.5x their\n"
      << "    isolated cost while the batch backlog saturates all workers\n";
  perf::save_artifact("BENCH_serving.json", json.str());
  out << "Per-configuration results written to results/BENCH_serving.json\n";
  emit("fig14.txt", out.str());
  if (!identity_ok || !throughput_ok || !latency_ok) {
    std::fputs("FAIL: serving identity/throughput/latency gate\n", stderr);
    return 1;
  }
  return 0;
}
