// Extension — the paper's Section 11 "Further Work", implemented:
// "We also plan to reduce the OpenMP overheads in the hybrid code by
// having a single parallel loop over all links in all blocks rather than
// one loop per block.  This will have the desired effect of reducing
// inter-thread dependencies, but requires a significant reorganisation of
// the data structures."
//
// This bench reruns the Figure 8 comparison (Compaq cluster, D = 3,
// MPI P = 16 vs hybrid P = 4 x T = 4) with the fused scheme added, and
// reports what the fusion actually buys: a granularity-independent
// parallel-region count and a collapsed lock fraction.
#include <sstream>

#include "common.hpp"

using namespace hdem;
using namespace hdem::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchContext ctx;
  declare_common_options(cli, ctx);
  if (cli.finish()) return 0;
  calibrate_platforms(ctx);
  const auto& machine = ctx.cpq;

  const std::vector<int> bpps = {1, 2, 4, 8, 16, 32};
  const double rcf = 2.0;

  std::ostringstream out;
  out << "== Extension (paper SS11): fused hybrid — one parallel loop over "
         "all links in all blocks ==\n   (Compaq cluster, D=3, rc=2.0; MPI "
         "P=16 vs hybrid P=4 T=4)\n\n";
  Table t({"B/P", "MPI t (s)", "hybrid t (s)", "fused t (s)",
           "hybrid locks", "fused locks", "hybrid regions/it",
           "fused regions/it"});
  AsciiPlot plot("Fused hybrid vs per-block hybrid vs MPI (efficiency)",
                 "B/P", "efficiency vs MPI at B/P=1", 64, 16);
  plot.set_logx(true);
  std::vector<double> xs, mpi_eff, hyb_eff, fused_eff;
  double t_ref = 0.0;
  for (int bpp : bpps) {
    perf::MeasureSpec mpi;
    mpi.D = 3;
    mpi.n = ctx.n_for(3);
    mpi.rc_factor = rcf;
    mpi.mode = perf::MeasureSpec::Mode::kMp;
    mpi.nprocs = 16;
    mpi.blocks_per_proc = bpp;
    mpi.iterations = ctx.iters;
    const double t_mpi =
        predict_paper_seconds(machine, perf::measure_run(mpi).run, 4);
    if (bpp == 1) t_ref = t_mpi;

    auto hybrid_run = [&](bool fused) {
      perf::MeasureSpec hyb = mpi;
      hyb.mode = perf::MeasureSpec::Mode::kHybrid;
      hyb.nprocs = 4;
      hyb.nthreads = 4;
      hyb.reduction = ReductionKind::kSelectedAtomic;
      hyb.fused = fused;
      return perf::measure_run(hyb).run;
    };
    const auto run_std = hybrid_run(false);
    const auto run_fused = hybrid_run(true);
    const double t_std = predict_paper_seconds(machine, run_std, 1);
    const double t_fused = predict_paper_seconds(machine, run_fused, 1);
    auto lock_frac = [](const perf::RunMeasurement& r) {
      const double a = static_cast<double>(r.agg.atomic_updates);
      const double p = static_cast<double>(r.agg.plain_updates);
      return a + p > 0 ? a / (a + p) : 0.0;
    };
    auto regions_per_iter = [](const perf::RunMeasurement& r) {
      return static_cast<double>(r.agg.parallel_regions) /
             static_cast<double>(r.nprocs) /
             static_cast<double>(r.iterations);
    };
    t.add_row({std::to_string(bpp), Table::num(t_mpi, 3),
               Table::num(t_std, 3), Table::num(t_fused, 3),
               Table::num(100 * lock_frac(run_std), 0) + "%",
               Table::num(100 * lock_frac(run_fused), 0) + "%",
               Table::num(regions_per_iter(run_std), 0),
               Table::num(regions_per_iter(run_fused), 0)});
    xs.push_back(bpp);
    mpi_eff.push_back(t_ref / t_mpi);
    hyb_eff.push_back(t_ref / t_std);
    fused_eff.push_back(t_ref / t_fused);
  }
  plot.add_series({"MPI", xs, mpi_eff});
  plot.add_series({"hybrid (per-block)", xs, hyb_eff});
  plot.add_series({"hybrid (fused)", xs, fused_eff});
  out << t.render() << "\n" << plot.render() << "\n";
  out << "Findings:\n"
      << "  - the fused scheme's parallel-region count stays at 2 per\n"
      << "    iteration regardless of B/P (per-block: 2 x blocks)\n"
      << "  - the lock fraction collapses because one thread's contiguous\n"
      << "    global link range covers whole blocks; conflicts only arise\n"
      << "    at the few range boundaries\n"
      << "  - the hybrid efficiency decay with B/P flattens accordingly —\n"
      << "    confirming the paper's hypothesis for its future work\n";
  emit("extension_fused_hybrid.txt", out.str());
  return 0;
}
