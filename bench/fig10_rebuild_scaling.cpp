// Figure 10 (extension) — list-rebuild scaling: host-measured time per
// rebuild vs thread count and system size for the parallel rebuild
// pipeline (parallel counting sort, parallel cell-order reorder, fused
// color-tagged link generation).  The paper prices the rebuild as "not
// time-critical" and keeps it serial; once the per-step force cost scales,
// the rebuild is the residual Amdahl term, which is what this bench
// quantifies.  Alongside the timings it verifies the pipeline's defining
// property: 120-step trajectories are bit-identical for every team size
// (the per-phase breakdown comes from the drivers' rebuild counters).
//
// Host timings measure this machine, not the paper's platforms; on a
// single-CPU host the thread sweep is oversubscribed and speedups sit
// below one — the numbers are still the honest measurement the JSON
// records (see EXPERIMENTS.md).
#include <cstring>
#include <sstream>

#include "common.hpp"
#include "core/serial_sim.hpp"
#include "driver/smp_sim.hpp"
#include "util/timer.hpp"

using namespace hdem;
using namespace hdem::bench;

namespace {

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Order-independent trajectory digest: fold each particle's (id, pos, vel)
// record at its id's rank, so storage order (which legitimately varies
// with the reorder flag) never affects the hash.
template <int D>
std::uint64_t state_hash(const ParticleStore<D>& store) {
  std::vector<std::size_t> by_id(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    by_id[static_cast<std::size_t>(store.id(i))] = i;
  }
  std::uint64_t h = 1469598103934665603ull;
  for (const std::size_t i : by_id) {
    const std::int32_t id = store.id(i);
    h = fnv1a(&id, sizeof(id), h);
    h = fnv1a(&store.pos(i), sizeof(Vec<D>), h);
    h = fnv1a(&store.vel(i), sizeof(Vec<D>), h);
  }
  return h;
}

struct RebuildTiming {
  double seconds_per_rebuild = 0.0;
  // Per-rebuild phase breakdown from the driver's counters (ns).
  double bin_ns = 0.0, reorder_ns = 0.0, linkgen_ns = 0.0;
};

template <int D>
RebuildTiming time_rebuilds(std::uint64_t n, int nthreads, bool reorder,
                            int rebuilds, int reps) {
  SimConfig<D> cfg;
  cfg.box = Vec<D>(1.0);
  cfg.bc = BoundaryKind::kPeriodic;
  cfg.seed = 12345;
  cfg.reorder = reorder;
  const auto init = uniform_random_particles(cfg, n);
  SmpSim<D> sim(cfg, ElasticSphere{cfg.stiffness, cfg.diameter}, init,
                nthreads, ReductionKind::kColored);
  sim.run(2);  // settle into a representative particle distribution

  RebuildTiming best;
  for (int r = 0; r < reps; ++r) {
    const Counters before = sim.counters();
    Timer t;
    for (int i = 0; i < rebuilds; ++i) sim.rebuild();
    const double per = t.seconds() / rebuilds;
    if (r == 0 || per < best.seconds_per_rebuild) {
      const Counters after = sim.counters();
      const auto d = counters_delta(after, before);
      best.seconds_per_rebuild = per;
      best.bin_ns = static_cast<double>(d.rebuild_bin_ns) / rebuilds;
      best.reorder_ns = static_cast<double>(d.rebuild_reorder_ns) / rebuilds;
      best.linkgen_ns = static_cast<double>(d.rebuild_linkgen_ns) / rebuilds;
    }
  }
  return best;
}

template <int D>
std::uint64_t trajectory_hash(std::uint64_t n, int nthreads, bool reorder,
                              int steps) {
  SimConfig<D> cfg;
  cfg.box = Vec<D>(1.0);
  cfg.bc = BoundaryKind::kPeriodic;
  cfg.seed = 777;
  cfg.velocity_scale = 0.8;  // several rebuilds inside the window
  cfg.reorder = reorder;
  const auto init = uniform_random_particles(cfg, n);
  SmpSim<D> sim(cfg, ElasticSphere{cfg.stiffness, cfg.diameter}, init,
                nthreads, ReductionKind::kColored);
  sim.run(static_cast<std::uint64_t>(steps));
  return state_hash(sim.store());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::uint64_t n2 = 120'000, n3 = 100'000;
  n2 = static_cast<std::uint64_t>(
      cli.integer("n2", static_cast<std::int64_t>(n2),
                  "particles for the D=2 rebuild timings"));
  n3 = static_cast<std::uint64_t>(
      cli.integer("n3", static_cast<std::int64_t>(n3),
                  "particles for the D=3 rebuild timings"));
  const auto threads =
      cli.integer_list("threads", {1, 2, 4}, "team sizes to time");
  const auto rebuilds = static_cast<int>(
      cli.integer("rebuilds", 3, "rebuilds per timed measurement"));
  const auto reps =
      static_cast<int>(cli.integer("reps", 2, "repetitions (best-of)"));
  const auto traj_n = static_cast<std::uint64_t>(cli.integer(
      "traj-n", 6'000, "particles for the bit-identity trajectory check"));
  const auto traj_steps = static_cast<int>(
      cli.integer("traj-steps", 120, "steps for the trajectory check"));
  if (cli.finish()) return 0;

  std::ostringstream out;
  out << "== Fig 10: rebuild-pipeline scaling (host time, colored "
         "reduction) ==\n\n";
  Table t({"D", "reorder", "N", "T", "ms/rebuild", "speedup", "bin ms",
           "reorder ms", "linkgen ms"});
  std::ostringstream json;
  json << "{\n  \"n2\": " << n2 << ",\n  \"n3\": " << n3
       << ",\n  \"rebuilds_per_measurement\": " << rebuilds
       << ",\n  \"results\": [";
  bool first = true;
  for (int D : {2, 3}) {
    const std::uint64_t n = D == 2 ? n2 : n3;
    for (bool reorder : {true, false}) {
      double t1 = 0.0;
      for (const auto threads_i : threads) {
        const int T = static_cast<int>(threads_i);
        const RebuildTiming m =
            D == 2 ? time_rebuilds<2>(n, T, reorder, rebuilds, reps)
                   : time_rebuilds<3>(n, T, reorder, rebuilds, reps);
        if (T == 1) t1 = m.seconds_per_rebuild;
        const double speedup =
            t1 > 0.0 ? t1 / m.seconds_per_rebuild : 0.0;
        t.add_row({std::to_string(D), reorder ? "on" : "off",
                   std::to_string(n), std::to_string(T),
                   Table::num(m.seconds_per_rebuild * 1e3, 2),
                   speedup > 0.0 ? Table::num(speedup, 3) + "x" : "-",
                   Table::num(m.bin_ns / 1e6, 2),
                   Table::num(m.reorder_ns / 1e6, 2),
                   Table::num(m.linkgen_ns / 1e6, 2)});
        json << (first ? "" : ",") << "\n    {\"D\": " << D
             << ", \"reorder\": " << (reorder ? "true" : "false")
             << ", \"n\": " << n << ", \"nthreads\": " << T
             << ", \"seconds_per_rebuild\": " << m.seconds_per_rebuild
             << ", \"speedup_vs_serial\": " << speedup
             << ", \"bin_ns\": " << m.bin_ns
             << ", \"reorder_ns\": " << m.reorder_ns
             << ", \"linkgen_ns\": " << m.linkgen_ns << "}";
        first = false;
      }
    }
  }

  // Bit-identity: the same 120-step trajectory for every team size, with
  // and without reordering, in both dimensions.
  out << t.render() << "\n";
  out << "Trajectory bit-identity across team sizes {1, 2, 4, 7} ("
      << traj_n << " particles, " << traj_steps << " steps):\n";
  json << "\n  ],\n  \"trajectory_identity\": [";
  bool all_identical = true;
  bool first_traj = true;
  for (int D : {2, 3}) {
    for (bool reorder : {true, false}) {
      std::uint64_t ref = 0;
      bool identical = true;
      std::ostringstream hashes;
      for (const int T : {1, 2, 4, 7}) {
        const std::uint64_t h =
            D == 2 ? trajectory_hash<2>(traj_n, T, reorder, traj_steps)
                   : trajectory_hash<3>(traj_n, T, reorder, traj_steps);
        if (T == 1) ref = h;
        identical = identical && h == ref;
        hashes << (T == 1 ? "" : ", ") << "\"" << std::hex << h << std::dec
               << "\"";
      }
      all_identical = all_identical && identical;
      out << "  D=" << D << " reorder=" << (reorder ? "on " : "off")
          << " -> " << (identical ? "bit-identical" : "MISMATCH") << "\n";
      json << (first_traj ? "" : ",") << "\n    {\"D\": " << D
           << ", \"reorder\": " << (reorder ? "true" : "false")
           << ", \"identical\": " << (identical ? "true" : "false")
           << ", \"hashes\": [" << hashes.str() << "]}";
      first_traj = false;
    }
  }
  json << "\n  ],\n  \"all_identical\": "
       << (all_identical ? "true" : "false") << "\n}\n";
  out << "\nShape checks:\n"
      << "  - the bin/reorder/linkgen breakdown accounts for nearly all of\n"
      << "    the per-rebuild time (no hidden serial splice or re-sort)\n"
      << "  - every trajectory hash is identical across team sizes: the\n"
      << "    parallel pipeline reproduces the serial rebuild exactly\n"
      << "  - speedups track the machine's real core count; an\n"
      << "    oversubscribed host shows flat or sub-1 scaling\n";
  perf::save_artifact("BENCH_rebuild.json", json.str());
  out << "Per-configuration results written to results/BENCH_rebuild.json\n";
  emit("fig10.txt", out.str());
  return all_identical ? 0 : 1;
}
