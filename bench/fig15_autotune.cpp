// Figure 15 (extension) — closed-loop auto-tuning: the sweep driver
// measures an (N, P, T, B, skin) grid over the real drivers, the fitted
// per-phase scaling model (perf/tune, perf/fit, DESIGN §3.10) is trained
// on those rows, and --auto's configuration choice is checked against the
// sweep's own ground truth.
//
// Three gated claims, per workload (a settled bed whose skin pays, and a
// hot uniform gas whose drift forces frequent rebuilds):
//   1. Fit accuracy: the model's predicted step time is within 15% of the
//      measured step time (mean over the grid), and each named phase
//      (force, rebuild, halo, migrate, rebalance) is within 25% (median)
//      on the rows where that phase carries >= 5% of the step.
//   2. Auto choice: the measured throughput of the configuration the
//      model ranks first is >= 90% of the best measured throughput in the
//      sweep (re-measured head-to-head when the configs differ) —
//      choosing by prediction costs at most 10%.
//   3. Serving identity: admission knobs picked by choose_serving (inner
//      threads, quantum) leave every served trajectory bit-identical to a
//      standalone re-run of the same spec — the tuner selects knobs, it
//      never moves a trajectory bit.
//
// The tune files land under results/tune/fig15_*.tune and are parsed back
// as a round-trip check of the documented format.  --smoke shrinks the
// grid and skips the tolerance assertions (the TSan CI leg runs it:
// instrumentation skews absolute times, not code paths — the sweep,
// fit, ranking and identity gate all still execute).  Results land in
// results/BENCH_autotune.json; any gate failure exits nonzero.
#include <algorithm>
#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "perf/tune.hpp"
#include "serve/scheduler.hpp"

using namespace hdem;
using namespace hdem::bench;

namespace {

constexpr double kTotalTol = 0.15;   // mean total rel error per workload
constexpr double kPhaseTol = 0.25;   // median per-phase rel error
constexpr double kPhaseShare = 0.05; // gate phases carrying >= 5% of a step
constexpr double kAutoFloor = 0.90;  // chosen config vs sweep-best sps

double phase_measured(const perf::TuneRow& r, int phase) {
  switch (phase) {
    case perf::FittedModel::kForce: return r.force_s;
    case perf::FittedModel::kRebuild: return r.rebuild_s;
    case perf::FittedModel::kHalo: return r.halo_s();
    case perf::FittedModel::kMigrate: return r.migrate_s;
    case perf::FittedModel::kRebalance: return r.rebalance_s;
    case perf::FittedModel::kOther: return r.other_s;
  }
  return 0.0;
}

struct WorkloadEval {
  std::string name;
  std::vector<perf::TuneRow> rows;
  perf::FittedModel model;
  double mean_total_err = 0.0;
  // Mean rel error and row count per phase, over rows where the phase
  // carries >= kPhaseShare of the step.
  std::array<double, perf::FittedModel::kPhaseCount> phase_err{};
  std::array<int, perf::FittedModel::kPhaseCount> phase_rows{};
  perf::TuneConfig chosen;
  double chosen_sps = 0.0;
  double best_sps = 0.0;
  bool total_ok = true;
  bool phases_ok = true;
  bool auto_ok = true;
};

WorkloadEval evaluate_workload(const std::string& name,
                               const perf::SweepSpec& sweep, bool smoke,
                               std::ostringstream& out) {
  WorkloadEval ev;
  ev.name = name;
  out << "== " << name << " workload (scenario " << sweep.workload.scenario
      << ", n=" << sweep.workload.n << ") ==\n\n";
  ev.rows = perf::run_sweep(sweep);

  // Persist + round-trip the documented format.
  const std::string path =
      perf::save_tune_rows("fig15_" + name + ".tune", ev.rows);
  const auto reread = perf::load_tune_rows(path);
  if (reread.size() != ev.rows.size()) {
    throw std::runtime_error("fig15: tune-file round trip lost rows");
  }
  for (std::size_t i = 0; i < ev.rows.size(); ++i) {
    const double a = ev.rows[i].step_seconds;
    const double b = reread[i].step_seconds;
    if (std::abs(a - b) > 1e-6 * std::max(std::abs(a), 1e-12)) {
      throw std::runtime_error("fig15: tune-file round trip moved step_s");
    }
  }
  out << "saved " << ev.rows.size() << " measurement rows to " << path
      << " (round-trip checked)\n\n";

  ev.model = perf::fit_model(ev.rows);

  Table t({"P", "T", "B", "skin", "rebuilds/step", "imb", "meas step(ms)",
           "pred step(ms)", "err"});
  double sum_total_err = 0.0;
  std::array<std::vector<double>, perf::FittedModel::kPhaseCount> phase_errs;
  for (const perf::TuneRow& r : ev.rows) {
    const auto pred = ev.model.predict(r.workload, r.config);
    const double err =
        std::abs(pred.total() - r.step_seconds) / r.step_seconds;
    sum_total_err += err;
    for (int p = 0; p < perf::FittedModel::kPhaseCount; ++p) {
      const double meas = phase_measured(r, p);
      if (meas < kPhaseShare * r.step_seconds) continue;
      phase_errs[static_cast<std::size_t>(p)].push_back(
          std::abs(pred[p] - meas) / meas);
    }
    if (r.steps_per_second() > ev.best_sps) ev.best_sps = r.steps_per_second();
    t.add_row({std::to_string(r.config.nprocs),
               std::to_string(r.config.nthreads),
               std::to_string(r.config.blocks_per_proc),
               Table::num(r.config.skin, 2),
               Table::num(r.rebuilds_per_step, 3),
               Table::num(r.imbalance, 2),
               Table::num(1e3 * r.step_seconds, 3),
               Table::num(1e3 * pred.total(), 3),
               Table::num(1e2 * err, 1) + "%"});
  }
  ev.mean_total_err = sum_total_err / static_cast<double>(ev.rows.size());
  out << t.render() << "\n";

  out << "prediction accuracy: total mean " << Table::num(1e2 * ev.mean_total_err, 1)
      << "% (gate <= " << Table::num(1e2 * kTotalTol, 0) << "%)\n";
  ev.total_ok = ev.mean_total_err <= kTotalTol;
  for (int p = 0; p < perf::FittedModel::kPhaseCount; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    auto& errs = phase_errs[pi];
    if (errs.empty()) continue;
    ev.phase_rows[pi] = static_cast<int>(errs.size());
    // Gate each phase on the median over qualifying rows: one scheduler
    // spike during one tiny phase's window is measurement noise, not a
    // model failure, and would dominate a mean.  The mean is reported
    // alongside.
    std::sort(errs.begin(), errs.end());
    const std::size_t mid = errs.size() / 2;
    ev.phase_err[pi] = errs.size() % 2 == 1
                           ? errs[mid]
                           : 0.5 * (errs[mid - 1] + errs[mid]);
    double mean = 0.0;
    for (const double e : errs) mean += e;
    mean /= static_cast<double>(errs.size());
    // The issue's phase gate covers the named phases; "other" is
    // scheduling slack and untraced remainder, reported but not gated.
    const bool gated = p != perf::FittedModel::kOther;
    const bool ok = !gated || ev.phase_err[pi] <= kPhaseTol;
    ev.phases_ok = ev.phases_ok && ok;
    out << "  " << perf::FittedModel::phase_name(p) << ": median "
        << Table::num(1e2 * ev.phase_err[pi], 1) << "% (mean "
        << Table::num(1e2 * mean, 1) << "%) over " << ev.phase_rows[pi]
        << " row(s)"
        << (gated ? (ok ? "" : "  <-- FAIL (> 25%)") : "  (not gated)")
        << "\n";
  }

  // --auto's choice, checked against the sweep's best measured config.
  std::vector<perf::TuneConfig> candidates;
  for (const perf::TuneRow& r : ev.rows) candidates.push_back(r.config);
  const auto ranked = perf::predict_ranked(ev.model, sweep.workload,
                                           candidates);
  ev.chosen = ranked.front().config;
  const perf::TuneRow* best_row = nullptr;
  for (const perf::TuneRow& r : ev.rows) {
    if (best_row == nullptr ||
        r.steps_per_second() > best_row->steps_per_second()) {
      best_row = &r;
    }
  }
  const auto same_config = [](const perf::TuneConfig& a,
                              const perf::TuneConfig& b) {
    return a.nprocs == b.nprocs && a.nthreads == b.nthreads &&
           a.blocks_per_proc == b.blocks_per_proc && a.skin == b.skin;
  };
  if (best_row != nullptr && same_config(ev.chosen, best_row->config)) {
    ev.chosen_sps = ev.best_sps = best_row->steps_per_second();
  } else if (best_row != nullptr) {
    // Re-measure the two configs head-to-head (interleaved, keep-fastest):
    // comparing two sweep rows taken minutes apart confounds the model's
    // choice with the host's noise epochs.
    double chosen_s = 0.0, best_s = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const double c_s =
          perf::measure_tune_point(sweep.workload, ev.chosen, sweep.iterations,
                                   sweep.warmup, sweep.min_seconds, 1)
              .step_seconds;
      const double b_s =
          perf::measure_tune_point(sweep.workload, best_row->config,
                                   sweep.iterations, sweep.warmup,
                                   sweep.min_seconds, 1)
              .step_seconds;
      if (rep == 0 || c_s < chosen_s) chosen_s = c_s;
      if (rep == 0 || b_s < best_s) best_s = b_s;
    }
    ev.chosen_sps = chosen_s > 0.0 ? 1.0 / chosen_s : 0.0;
    ev.best_sps = best_s > 0.0 ? 1.0 / best_s : 0.0;
  }
  ev.auto_ok = ev.best_sps > 0.0 && ev.chosen_sps >= kAutoFloor * ev.best_sps;
  out << "auto choice: P=" << ev.chosen.nprocs << " T=" << ev.chosen.nthreads
      << " B=" << ev.chosen.blocks_per_proc << " skin="
      << Table::num(ev.chosen.skin, 2) << " -> measured "
      << Table::num(ev.chosen_sps, 1) << " steps/s vs sweep best "
      << Table::num(ev.best_sps, 1) << " ("
      << Table::num(ev.best_sps > 0.0 ? 1e2 * ev.chosen_sps / ev.best_sps
                                      : 0.0, 1)
      << "%, gate >= " << Table::num(1e2 * kAutoFloor, 0) << "%)\n\n";

  if (smoke) {
    // TSan instrumentation skews the absolute times the tolerances
    // assume; the paths above all ran, which is what the leg checks.
    ev.total_ok = ev.phases_ok = ev.auto_ok = true;
    out << "(--smoke: tolerance gates reported, not asserted)\n\n";
  }
  return ev;
}

// The tune-model workload class of a serving job (same mapping as
// examples/sim_server.cpp).
perf::TuneWorkload job_workload(const serve::JobSpec& spec) {
  perf::TuneWorkload w;
  w.scenario = serve::to_string(spec.scenario);
  w.D = spec.dim;
  w.n = spec.n;
  w.velocity_scale = spec.velocity_scale;
  w.settled_stride = spec.scenario == serve::Scenario::kSettled
                         ? spec.settled_stride
                         : 0;
  w.cluster_fraction = spec.scenario == serve::Scenario::kClustered
                           ? spec.clustered_fraction
                           : 1.0;
  return w;
}

// Gate 3: serve a mini trace with choose_serving-picked knobs, then
// byte-compare every checkpoint against a standalone re-run.
bool serving_identity_gate(const perf::FittedModel& model,
                           std::ostringstream& out) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::path(perf::results_dir()) / "tune" / "fig15_serve").string();
  fs::create_directories(dir);

  std::vector<serve::JobSpec> specs;
  const struct {
    serve::Scenario scenario;
    std::uint64_t n, steps;
    serve::DeadlineClass deadline;
  } mini[] = {
      {serve::Scenario::kUniform, 500, 48, serve::DeadlineClass::kBatch},
      {serve::Scenario::kSettled, 600, 48,
       serve::DeadlineClass::kInteractive},
      {serve::Scenario::kClustered, 500, 32, serve::DeadlineClass::kBatch},
      {serve::Scenario::kUniform, 700, 32,
       serve::DeadlineClass::kInteractive},
  };
  std::uint64_t quantum = 0;
  for (const auto& m : mini) {
    serve::JobSpec spec;
    spec.job_id = specs.size();
    spec.scenario = m.scenario;
    spec.n = m.n;
    spec.steps = m.steps;
    spec.deadline = m.deadline;
    spec.seed = 4242;
    spec.checkpoint_path =
        (fs::path(dir) / ("job_" + std::to_string(spec.job_id) + ".ckp"))
            .string();
    const auto choice = perf::choose_serving(
        model, job_workload(spec), spec.skin_factor,
        m.deadline == serve::DeadlineClass::kInteractive, 2);
    spec.inner_threads = choice.inner_threads;
    if (quantum == 0 || choice.quantum_steps < quantum) {
      quantum = choice.quantum_steps;
    }
    specs.push_back(spec);
  }

  {
    smp::ThreadTeam team(2);
    serve::Scheduler sched(team, {.quantum_steps = quantum});
    std::vector<std::future<serve::JobResult>> futures;
    for (const auto& spec : specs) {
      futures.push_back(sched.submit(serve::make_job(spec)));
    }
    sched.drain();
    for (auto& f : futures) f.get();
  }

  bool ok = true;
  for (const auto& spec : specs) {
    serve::JobSpec solo = spec;
    solo.checkpoint_path = spec.checkpoint_path + ".verify";
    auto job = serve::make_job(solo);
    job->advance(solo.steps);
    const auto read = [](const std::string& p) {
      std::ifstream in(p, std::ios::binary);
      std::ostringstream os;
      os << in.rdbuf();
      return os.str();
    };
    const std::string served = read(spec.checkpoint_path);
    const std::string alone = read(solo.checkpoint_path);
    const bool same = !served.empty() && served == alone;
    out << "  job " << spec.job_id << " (" << to_string(spec.scenario)
        << ", T=" << spec.inner_threads << "): "
        << (same ? "bit-identical" : "DIVERGED") << "\n";
    ok = ok && same;
    fs::remove(solo.checkpoint_path);
  }
  out << "serving identity (quantum " << quantum << "): "
      << (ok ? "PASS" : "FAIL") << "\n\n";
  return ok;
}

std::vector<double> parse_skins(const std::string& s) {
  std::vector<double> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stod(tok));
  }
  if (out.empty()) out.push_back(0.0);
  return out;
}

std::vector<int> to_ints(const std::vector<std::int64_t>& v) {
  std::vector<int> out;
  for (const auto x : v) out.push_back(static_cast<int>(x));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  auto n = static_cast<std::uint64_t>(
      cli.integer("n", 2500, "particles per workload"));
  auto iters = static_cast<std::uint64_t>(
      cli.integer("iters", 8, "measured iterations per grid point"));
  const auto warmup = static_cast<std::uint64_t>(
      cli.integer("warmup", 2, "warmup iterations per grid point"));
  auto reps = static_cast<int>(cli.integer(
      "reps", 5, "repetitions per grid point (fastest kept)"));
  auto procs = to_ints(cli.integer_list("procs", {1, 2, 4}, "rank counts"));
  auto threads = to_ints(
      cli.integer_list("threads", {1, 2}, "threads per rank"));
  auto blocks = to_ints(
      cli.integer_list("blocks", {1, 2}, "blocks per rank (P > 1)"));
  auto skins = parse_skins(cli.str(
      "skins", "0,0.3", "comma-separated skin factors"));
  auto min_seconds = cli.real(
      "min-seconds", 0.08, "minimum wall-clock per measured window");
  const auto max_cpus = static_cast<int>(cli.integer(
      "max-cpus", 0, "skip grid points with P*T above this (0: no cap)"));
  const bool smoke = cli.flag(
      "smoke", "tiny grid, tolerance gates reported but not asserted (TSan)");
  if (cli.finish()) return 0;

  if (smoke) {
    n = 800;
    iters = 4;
    reps = 1;
    procs = {1, 2};
    threads = {2};
    blocks = {1};
    skins = {0.0};
    min_seconds = 0.005;
  }

  std::ostringstream out;
  out << "Figure 15 (extension): closed-loop auto-tuning — sweep, fit, "
         "predict\n"
      << perf::machine_report(perf::generic_host()) << "\n\n";

  const auto make_sweep = [&](const std::string& scenario) {
    perf::SweepSpec sweep;
    sweep.workload.scenario = scenario;
    sweep.workload.D = 2;
    sweep.workload.n = n;
    if (scenario == "settled") {
      sweep.workload.settled_stride = 8;
      sweep.workload.velocity_scale = 0.25;
    } else {
      sweep.workload.velocity_scale = 0.25;
    }
    sweep.procs = procs;
    sweep.threads = threads;
    sweep.blocks = blocks;
    sweep.skins = skins;
    sweep.iterations = iters;
    sweep.warmup = warmup;
    sweep.min_seconds = min_seconds;
    sweep.reps = reps;
    sweep.max_cpus = max_cpus;
    return sweep;
  };

  const WorkloadEval settled =
      evaluate_workload("settled", make_sweep("settled"), smoke, out);
  const WorkloadEval hot =
      evaluate_workload("hot", make_sweep("uniform"), smoke, out);

  out << "== serving identity (choose_serving knobs) ==\n\n";
  const bool identity_ok = serving_identity_gate(hot.model, out);

  int failures = 0;
  for (const WorkloadEval* ev : {&settled, &hot}) {
    if (!ev->total_ok) {
      out << "FAIL: " << ev->name << " total prediction error "
          << Table::num(1e2 * ev->mean_total_err, 1) << "% > "
          << Table::num(1e2 * kTotalTol, 0) << "%\n";
      ++failures;
    }
    if (!ev->phases_ok) {
      out << "FAIL: " << ev->name << " per-phase prediction error > "
          << Table::num(1e2 * kPhaseTol, 0) << "%\n";
      ++failures;
    }
    if (!ev->auto_ok) {
      out << "FAIL: " << ev->name << " auto-chosen config below "
          << Table::num(1e2 * kAutoFloor, 0) << "% of sweep best\n";
      ++failures;
    }
  }
  if (!identity_ok) {
    out << "FAIL: served trajectory diverged under auto-chosen knobs\n";
    ++failures;
  }
  if (failures == 0) out << "All fig15 gates PASS\n";

  // -- JSON artifact -------------------------------------------------------
  JsonArray workloads;
  for (const WorkloadEval* ev : {&settled, &hot}) {
    JsonObject phases;
    for (int p = 0; p < perf::FittedModel::kPhaseCount; ++p) {
      const auto pi = static_cast<std::size_t>(p);
      if (ev->phase_rows[pi] == 0) continue;
      phases.num(perf::FittedModel::phase_name(p), ev->phase_err[pi]);
    }
    JsonObject chosen;
    chosen.num("P", ev->chosen.nprocs)
        .num("T", ev->chosen.nthreads)
        .num("B", ev->chosen.blocks_per_proc)
        .num("skin", ev->chosen.skin);
    JsonObject w;
    w.str("name", ev->name)
        .num("rows", static_cast<double>(ev->rows.size()))
        .num("mean_total_rel_err", ev->mean_total_err)
        .raw("phase_rel_err", phases.render())
        .num("best_steps_per_s", ev->best_sps)
        .num("auto_steps_per_s", ev->chosen_sps)
        .raw("auto_config", chosen.render())
        .boolean("total_gate", ev->total_ok)
        .boolean("phase_gate", ev->phases_ok)
        .boolean("auto_gate", ev->auto_ok);
    workloads.push(w.render());
  }
  JsonObject root;
  root.raw("workloads", workloads.render())
      .boolean("serving_identity", identity_ok)
      .boolean("smoke", smoke)
      .num("total_tolerance", kTotalTol)
      .num("phase_tolerance", kPhaseTol)
      .num("auto_floor", kAutoFloor);
  perf::save_artifact("BENCH_autotune.json", root.render() + "\n");
  out << "Per-workload results written to results/BENCH_autotune.json\n";

  emit("fig15.txt", out.str());
  return failures == 0 ? 0 : 1;
}
