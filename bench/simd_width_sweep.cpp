// SIMD width sweep — the vectorized kernel layer's measurement artifact.
//
// Three measurements, written to results/BENCH_simd.json:
//   1. whole-kernel ns/link of the batched pair force pass at every
//      dispatch width this build + CPU supports, for both force models
//      (elastic, dissipative) in 2D and 3D;
//   2. ns/link of the compute phase alone (Model::pair over the batch
//      scratch arrays — the paper's "one square root and one inverse")
//      scalar vs packed at the native width, which is where the >= 1.3x
//      vector gain must show up;
//   3. 120-step trajectory hashes per width for the serial, SmpSim and
//      MpSim drivers — the bit-identity contract of DESIGN.md §3.4.
//
// Exit status is nonzero when any trajectory hash differs across widths;
// the speedups are honest host measurements and are recorded either way.
#include <cstring>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "core/boundary.hpp"
#include "core/cell_grid.hpp"
#include "core/init.hpp"
#include "core/serial_sim.hpp"
#include "driver/mp_sim.hpp"
#include "driver/smp_sim.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

using namespace hdem;
using namespace hdem::bench;

namespace {

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Order-independent trajectory digest (see fig10): fold each particle's
// (id, pos, vel) record at its id's rank.
template <int D>
std::uint64_t state_hash(const ParticleStore<D>& store) {
  std::vector<std::size_t> by_id(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    by_id[static_cast<std::size_t>(store.id(i))] = i;
  }
  std::uint64_t h = 1469598103934665603ull;
  for (const std::size_t i : by_id) {
    const std::int32_t id = store.id(i);
    h = fnv1a(&id, sizeof(id), h);
    h = fnv1a(&store.pos(i), sizeof(Vec<D>), h);
    h = fnv1a(&store.vel(i), sizeof(Vec<D>), h);
  }
  return h;
}

template <int D>
std::uint64_t records_hash(const std::vector<StateRecord<D>>& recs) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& r : recs) {
    h = fnv1a(&r.id, sizeof(r.id), h);
    h = fnv1a(&r.pos, sizeof(r.pos), h);
    h = fnv1a(&r.vel, sizeof(r.vel), h);
  }
  return h;
}

// The kernels_gbench benchmark system, templated over dimension.
template <int D>
struct System {
  SimConfig<D> cfg;
  Boundary<D> bc;
  ParticleStore<D> store;
  CellGrid<D> grid;
  LinkList list;

  explicit System(std::uint64_t n) {
    cfg.box = Vec<D>(SimConfig<D>::paper_box_edge(n));
    bc = Boundary<D>(cfg.bc, cfg.box);
    for (const auto& p : uniform_random_particles(cfg, n)) {
      store.push_back(p.pos, p.vel);
    }
    std::array<bool, D> wrap{};
    wrap.fill(true);
    grid.configure(Vec<D>{}, cfg.box, cfg.cutoff(), wrap);
    grid.bin(store.positions(), store.size());
    store.apply_permutation(grid.order(), store.size());
    grid.reset_order_to_identity();
    auto disp = [this](const Vec<D>& a, const Vec<D>& b) {
      return bc.displacement(a, b);
    };
    build_links(list, grid, store.cpositions(), store.size(), cfg.cutoff(),
                disp);
  }
};

// Best-of ns/link of the whole batched force pass at `width`.
template <int D, class Model>
double time_force_pass(System<D>& sys, const Model& model, int width,
                       int reps) {
  simd::set_dispatch_width(width);
  const PairDisp<D> disp = sys.bc.pair_disp();
  double best = 1e300;
  for (int r = 0; r <= reps; ++r) {  // r = 0 is the warm-up
    zero_forces(sys.store);
    Timer t;
    const double pe = accumulate_forces<D>(sys.list.core(), sys.store, model,
                                           disp, true, 1.0);
    const double sec = t.seconds();
    volatile double guard = pe;
    (void)guard;
    if (r > 0 && sec < best) best = sec;
  }
  simd::set_dispatch_width(0);
  return best / static_cast<double>(sys.list.n_core) * 1e9;
}

// --- compute phase in isolation --------------------------------------------
// Model::pair over flat r2/rv scratch, exactly as the kernel's middle phase
// runs it; scalar loop vs packs of compile-time width W.

template <class Model>
double eval_scalar(const Model& model, const std::vector<double>& r2,
                   const std::vector<double>& rv, std::vector<double>& s,
                   std::vector<double>& e, std::vector<unsigned char>& hit) {
  for (std::size_t k = 0; k < r2.size(); ++k) {
    hit[k] = model.pair(r2[k], rv[k], s[k], e[k]) ? 1 : 0;
  }
  return s[0];
}

template <int W, class Model>
double eval_packed(const Model& model, const std::vector<double>& r2,
                   const std::vector<double>& rv, std::vector<double>& s,
                   std::vector<double>& e, std::vector<unsigned char>& hit) {
  using P = simd::pack<double, W>;
  const std::size_t n = r2.size();
  std::size_t k = 0;
  for (; k + W <= n; k += W) {
    const P pr2 = P::load(&r2[k]);
    const P prv = P::load(&rv[k]);
    P ps, pe;
    const auto m = model.pair_packed(pr2, prv, ps, pe);
    ps.store(&s[k]);
    pe.store(&e[k]);
    m.store_bytes(&hit[k]);
  }
  for (; k < n; ++k) hit[k] = model.pair(r2[k], rv[k], s[k], e[k]) ? 1 : 0;
  return s[0];
}

struct ComputePhase {
  double ns_scalar = 0.0;
  double ns_simd = 0.0;
  double speedup() const { return ns_simd > 0.0 ? ns_scalar / ns_simd : 1.0; }
};

template <class Model>
ComputePhase time_compute_phase(const Model& model, int width, std::size_t n,
                                int reps) {
  // Separations spanning hit and miss lanes around the contact diameter.
  std::vector<double> r2(n), rv(n), s(n), e(n);
  std::vector<unsigned char> hit(n);
  std::uint64_t rng = 0x2545f4914f6cdd1dull;
  for (std::size_t k = 0; k < n; ++k) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const double u = static_cast<double>(rng >> 11) / 9007199254740992.0;
    const double d = model.d;
    r2[k] = (0.25 + 1.5 * u) * d * d;
    rv[k] = (u - 0.5) * 1e-3;
  }
  const auto best_of = [&](auto&& fn) {
    double best = 1e300;
    for (int r = 0; r <= reps; ++r) {
      Timer t;
      const double guard = fn();
      const double sec = t.seconds();
      volatile double g = guard;
      (void)g;
      if (r > 0 && sec < best) best = sec;
    }
    return best / static_cast<double>(n) * 1e9;
  };
  ComputePhase out;
  out.ns_scalar = best_of([&] { return eval_scalar(model, r2, rv, s, e, hit); });
  double ns_v = out.ns_scalar;
  if constexpr (simd::kMaxWidth >= 4) {
    if (width >= 4) {
      ns_v = best_of([&] { return eval_packed<4>(model, r2, rv, s, e, hit); });
    }
  }
  if constexpr (simd::kMaxWidth >= 2) {
    if (width == 2) {
      ns_v = best_of([&] { return eval_packed<2>(model, r2, rv, s, e, hit); });
    }
  }
  out.ns_simd = ns_v;
  return out;
}

// A DissipativeSphere with ElasticSphere-compatible construction for the
// sweep loops.
struct Models {
  ElasticSphere elastic;
  DissipativeSphere dissipative;
};

// --- trajectory identity ---------------------------------------------------

template <int D>
SimConfig<D> traj_config() {
  SimConfig<D> cfg;
  cfg.box = Vec<D>(1.0);
  cfg.bc = BoundaryKind::kPeriodic;
  cfg.seed = 777;
  cfg.velocity_scale = 0.8;  // several rebuilds inside the window
  return cfg;
}

template <int D>
std::uint64_t serial_traj(std::uint64_t n, int steps, int width) {
  simd::set_dispatch_width(width);
  const auto cfg = traj_config<D>();
  const auto init = uniform_random_particles(cfg, n);
  SerialSim<D> sim(cfg, ElasticSphere{cfg.stiffness, cfg.diameter}, init);
  sim.run(static_cast<std::uint64_t>(steps));
  simd::set_dispatch_width(0);
  return state_hash(sim.store());
}

template <int D>
std::uint64_t smp_traj(std::uint64_t n, int steps, int width) {
  simd::set_dispatch_width(width);
  const auto cfg = traj_config<D>();
  const auto init = uniform_random_particles(cfg, n);
  SmpSim<D> sim(cfg, ElasticSphere{cfg.stiffness, cfg.diameter}, init, 3,
                ReductionKind::kColored);
  sim.run(static_cast<std::uint64_t>(steps));
  simd::set_dispatch_width(0);
  return state_hash(sim.store());
}

template <int D>
std::uint64_t mp_traj(std::uint64_t n, int steps, int width) {
  simd::set_dispatch_width(width);
  const auto cfg = traj_config<D>();
  const auto init = uniform_random_particles(cfg, n);
  const auto layout = DecompLayout<D>::make(2, 2);
  std::uint64_t h = 0;
  mp::run(2, [&](mp::Comm& comm) {
    typename MpSim<D>::Options opts;
    MpSim<D> sim(cfg, layout, comm, ElasticSphere{cfg.stiffness, cfg.diameter},
                 init, opts);
    sim.run(static_cast<std::uint64_t>(steps));
    const auto state = sim.gather_state();
    if (comm.rank() == 0) h = records_hash(state);
  });
  simd::set_dispatch_width(0);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n2 = static_cast<std::uint64_t>(
      cli.integer("n2", 30'000, "particles for the D=2 force-pass timings"));
  const auto n3 = static_cast<std::uint64_t>(
      cli.integer("n3", 24'000, "particles for the D=3 force-pass timings"));
  const auto reps =
      static_cast<int>(cli.integer("reps", 5, "repetitions (best-of)"));
  const auto phase_n = static_cast<std::uint64_t>(cli.integer(
      "phase-n", 1 << 16, "elements for the compute-phase timings"));
  const auto traj_n = static_cast<std::uint64_t>(cli.integer(
      "traj-n", 4'000, "particles for the bit-identity trajectory check"));
  const auto traj_steps = static_cast<int>(
      cli.integer("traj-steps", 120, "steps for the trajectory check"));
  if (cli.finish()) return 0;

  std::vector<int> widths{1};
  if (simd::kMaxWidth >= 2 && simd::cpu_supports_width(2)) widths.push_back(2);
  if (simd::kMaxWidth >= 4 && simd::cpu_supports_width(4)) widths.push_back(4);
  const int native = widths.back();

  std::ostringstream out;
  out << "== SIMD width sweep (compiled=" << simd::isa_name(simd::kCompiledIsa)
      << ", native width=" << native << ") ==\n\n";

  std::ostringstream json;
  json << "{\n  \"compiled_isa\": \"" << simd::isa_name(simd::kCompiledIsa)
       << "\",\n  \"native_width\": " << native << ",\n";

  // -- whole-kernel ns/link sweep ------------------------------------------
  const Models models{};
  Table t({"D", "model", "width", "ns/link", "speedup vs scalar"});
  json << "  \"force_pass\": [";
  bool first = true;
  double best_kernel_speedup = 0.0;
  System<2> sys2(n2);
  System<3> sys3(n3);
  for (int D : {2, 3}) {
    for (const char* mname : {"elastic", "dissipative"}) {
      const bool elastic = std::strcmp(mname, "elastic") == 0;
      double ns1 = 0.0;
      for (const int w : widths) {
        double ns = 0.0;
        if (D == 2) {
          ns = elastic ? time_force_pass(sys2, models.elastic, w, reps)
                       : time_force_pass(sys2, models.dissipative, w, reps);
        } else {
          ns = elastic ? time_force_pass(sys3, models.elastic, w, reps)
                       : time_force_pass(sys3, models.dissipative, w, reps);
        }
        if (w == 1) ns1 = ns;
        const double speedup = ns > 0.0 ? ns1 / ns : 0.0;
        if (w == native && speedup > best_kernel_speedup) {
          best_kernel_speedup = speedup;
        }
        t.add_row({std::to_string(D), mname, std::to_string(w),
                   Table::num(ns, 2),
                   w == 1 ? "-" : Table::num(speedup, 2) + "x"});
        json << (first ? "" : ",") << "\n    {\"D\": " << D
             << ", \"model\": \"" << mname << "\", \"width\": " << w
             << ", \"ns_per_link\": " << ns
             << ", \"speedup_vs_scalar\": " << speedup << "}";
        first = false;
      }
    }
  }
  json << "\n  ],\n";
  out << t.render() << "\n";

  // -- compute phase in isolation ------------------------------------------
  Table ct({"model", "width", "scalar ns/elem", "simd ns/elem", "speedup"});
  json << "  \"compute_phase\": [";
  double best_phase_speedup = 0.0;
  bool cfirst = true;
  for (const char* mname : {"elastic", "dissipative"}) {
    const bool elastic = std::strcmp(mname, "elastic") == 0;
    const ComputePhase p =
        elastic
            ? time_compute_phase(models.elastic, native, phase_n, reps)
            : time_compute_phase(models.dissipative, native, phase_n, reps);
    best_phase_speedup = std::max(best_phase_speedup, p.speedup());
    ct.add_row({mname, std::to_string(native), Table::num(p.ns_scalar, 2),
                Table::num(p.ns_simd, 2), Table::num(p.speedup(), 2) + "x"});
    json << (cfirst ? "" : ",") << "\n    {\"model\": \"" << mname
         << "\", \"width\": " << native
         << ", \"ns_per_elem_scalar\": " << p.ns_scalar
         << ", \"ns_per_elem_simd\": " << p.ns_simd
         << ", \"speedup\": " << p.speedup() << "}";
    cfirst = false;
  }
  json << "\n  ],\n  \"best_compute_phase_speedup\": " << best_phase_speedup
       << ",\n  \"best_kernel_speedup\": " << best_kernel_speedup
       << ",\n  \"meets_1p3x\": "
       << (best_phase_speedup >= 1.3 ? "true" : "false") << ",\n";
  out << ct.render() << "\n";
  out << "Best compute-phase speedup at native width: "
      << Table::num(best_phase_speedup, 2) << "x (target >= 1.3x)\n\n";

  // -- trajectory bit-identity across widths -------------------------------
  out << "Trajectory bit-identity across widths {";
  for (std::size_t i = 0; i < widths.size(); ++i) {
    out << (i ? ", " : "") << widths[i];
  }
  out << "} (" << traj_n << " particles, " << traj_steps << " steps):\n";
  json << "  \"trajectory_identity\": [";
  bool all_identical = true;
  bool tfirst = true;
  const auto check = [&](const char* driver, int D, auto&& runner) {
    std::uint64_t ref = 0;
    bool identical = true;
    std::ostringstream hashes;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::uint64_t h = runner(widths[i]);
      if (i == 0) ref = h;
      identical = identical && h == ref;
      hashes << (i ? ", " : "") << "\"" << std::hex << h << std::dec << "\"";
    }
    all_identical = all_identical && identical;
    out << "  " << driver << " D=" << D << " -> "
        << (identical ? "bit-identical" : "MISMATCH") << "\n";
    json << (tfirst ? "" : ",") << "\n    {\"driver\": \"" << driver
         << "\", \"D\": " << D
         << ", \"identical\": " << (identical ? "true" : "false")
         << ", \"hashes\": [" << hashes.str() << "]}";
    tfirst = false;
  };
  check("serial", 2,
        [&](int w) { return serial_traj<2>(traj_n, traj_steps, w); });
  check("serial", 3,
        [&](int w) { return serial_traj<3>(traj_n, traj_steps, w); });
  check("smp", 3, [&](int w) { return smp_traj<3>(traj_n, traj_steps, w); });
  check("mp", 3, [&](int w) { return mp_traj<3>(traj_n, traj_steps, w); });
  json << "\n  ],\n  \"all_identical\": "
       << (all_identical ? "true" : "false") << "\n}\n";

  out << "\nShape checks:\n"
      << "  - compute-phase speedup at the native width exceeds 1.3x on at\n"
      << "    least one force model (explicit sqrt/rcp lanes vs scalar)\n"
      << "  - whole-kernel gains are smaller (gather + ordered scatter stay\n"
      << "    partly serial by design) but must not regress below 1x\n"
      << "  - every trajectory hash is identical across widths: fixed-order\n"
      << "    lane reduction keeps the vector kernels bit-exact\n";
  perf::save_artifact("BENCH_simd.json", json.str());
  out << "Per-width results written to results/BENCH_simd.json\n";
  emit("simd_width_sweep.txt", out.str());
  return all_identical ? 0 : 1;
}
