// Section 9.3 — the measured fraction of force updates that require an
// atomic lock in the hybrid scheme, as a function of granularity.  "We see
// a steep increase with B in the total number of atomic locks required
// during the force calculation, rising to around 50% at the finest
// granularity for D = 3.  For D = 2, however, the maximum is around 25%."
//
// This is a pure measurement of the real code (no model): the conflict
// table marks a particle shared when links of more than one thread touch
// it, and blocks shrink as B grows.
#include <map>
#include <sstream>

#include "common.hpp"

using namespace hdem;
using namespace hdem::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchContext ctx;
  declare_common_options(cli, ctx);
  if (cli.finish()) return 0;

  const std::vector<int> bpps = {1, 2, 4, 8, 16, 32};

  std::ostringstream out;
  out << "== Ablation: measured lock fraction vs granularity (hybrid P=4, "
         "T=4, rc=1.5) ==\n\n";
  Table t({"D", "B/P", "atomic updates", "plain updates", "lock fraction"});
  AsciiPlot plot("Lock fraction vs B/P (paper: ~25% D=2, ~50% D=3 at finest)",
                 "B/P", "locked fraction of force updates", 60, 14);
  plot.set_logx(true);
  std::map<int, double> finest;
  for (int D : {2, 3}) {
    std::vector<double> xs, ys;
    for (int bpp : bpps) {
      perf::MeasureSpec s;
      s.D = D;
      s.n = ctx.n_for(D);
      s.rc_factor = 1.5;
      s.mode = perf::MeasureSpec::Mode::kHybrid;
      s.nprocs = 4;
      s.nthreads = 4;
      s.blocks_per_proc = bpp;
      s.reduction = ReductionKind::kSelectedAtomic;
      s.iterations = ctx.iters;
      const auto run = perf::measure_run(s).run;
      const double frac =
          static_cast<double>(run.agg.atomic_updates) /
          std::max<double>(1.0, static_cast<double>(run.agg.atomic_updates +
                                                    run.agg.plain_updates));
      t.add_row({std::to_string(D), std::to_string(bpp),
                 std::to_string(run.agg.atomic_updates),
                 std::to_string(run.agg.plain_updates),
                 Table::num(100.0 * frac, 1) + "%"});
      xs.push_back(bpp);
      ys.push_back(frac);
      finest[D] = frac;
    }
    plot.add_series({"D=" + std::to_string(D), xs, ys});
  }
  out << t.render() << "\n" << plot.render() << "\n";
  out << "Paper shape checks:\n"
      << "  - the fraction rises steeply with B/P for both dimensionalities\n"
      << "  - D=3 tops out roughly twice as high as D=2 (paper: ~50% vs\n"
      << "    ~25%); measured finest-granularity values here: D=2 "
      << Table::num(100.0 * finest[2], 0) << "%, D=3 "
      << Table::num(100.0 * finest[3], 0) << "%\n";
  emit("ablation_lock_fraction.txt", out.str());
  return 0;
}
