// Shared implementation of Figures 7 and 8 (and the no-lock ablation):
// efficiency of pure MPI (P = 16, four ranks per ES40 node) versus the
// hybrid scheme (P = 4 ranks, one per node, T = 4 threads each) on the
// Compaq cluster, as a function of granularity B/P, normalised to the MPI
// run at B/P = 1.
#pragma once

#include <sstream>
#include <vector>

#include "common.hpp"
#include "util/decomp_cli.hpp"
#include "util/halo_cli.hpp"

namespace hdem::bench {

struct HybridFigureResult {
  // efficiency[rc][scheme] aligned with the bpp list
  std::vector<int> bpps;
};

inline int run_hybrid_granularity_bench(int argc, char** argv, int D,
                                        ReductionKind hybrid_reduction,
                                        const std::string& figure,
                                        const std::string& title,
                                        const std::string& shape_notes) {
  Cli cli(argc, argv);
  BenchContext ctx;
  declare_common_options(cli, ctx);
  const auto decomp =
      declare_decomp_options(cli, {1, 2, 4, 8, 16, 32});
  const auto halo = declare_halo_options(cli);
  if (cli.finish()) return 0;
  calibrate_platforms(ctx);
  const auto& machine = ctx.cpq;

  std::vector<int> bpps;
  for (const std::int64_t b : decomp.blocks_per_proc) {
    bpps.push_back(static_cast<int>(b));
  }

  std::ostringstream out;
  out << "== " << title << " ==\n\n";
  Table t({"rc/rmax", "B/P", "MPI t (s)", "hybrid t (s)", "MPI eff",
           "hybrid eff", "hybrid lock frac"});
  AsciiPlot plot(title, "B/P", "efficiency vs MPI at B/P=1", 64, 18);
  plot.set_logx(true);
  for (double rcf : {1.5, 2.0}) {
    std::vector<double> xs, mpi_eff, hyb_eff;
    double t_ref = 0.0;
    for (int bpp : bpps) {
      // Pure MPI: 16 ranks packed four per node.
      perf::MeasureSpec mpi;
      mpi.D = D;
      mpi.n = ctx.n_for(D);
      mpi.rc_factor = rcf;
      mpi.mode = perf::MeasureSpec::Mode::kMp;
      mpi.nprocs = 16;
      mpi.blocks_per_proc = bpp;
      mpi.iterations = ctx.iters;
      mpi.rebalance = decomp.rebalance;
      mpi.rebalance_threshold = decomp.rebalance_threshold;
      mpi.shared_halo = decomp.shared_halo;
      mpi.ranks_per_node = static_cast<int>(decomp.ranks_per_node);
      mpi.halo_delta = halo.delta;
      mpi.halo_coalesce = halo.coalesce;
      const double t_mpi =
          predict_paper_seconds(machine, perf::measure_run(mpi).run, 4);
      if (bpp == 1) t_ref = t_mpi;

      // Hybrid: 4 ranks (one per node) x 4 threads.
      perf::MeasureSpec hyb = mpi;
      hyb.mode = perf::MeasureSpec::Mode::kHybrid;
      hyb.nprocs = 4;
      hyb.nthreads = 4;
      hyb.blocks_per_proc = bpp;
      hyb.reduction = hybrid_reduction;
      hyb.steal =
          decomp.steal && hybrid_reduction == ReductionKind::kColored;
      const auto hyb_run = perf::measure_run(hyb).run;
      const double t_hyb = predict_paper_seconds(machine, hyb_run, 1);
      const double locks =
          static_cast<double>(hyb_run.agg.atomic_updates) /
          std::max<double>(1.0, static_cast<double>(
                                    hyb_run.agg.atomic_updates +
                                    hyb_run.agg.plain_updates));

      t.add_row({Table::num(rcf, 1), std::to_string(bpp),
                 Table::num(t_mpi, 3), Table::num(t_hyb, 3),
                 Table::num(t_ref / t_mpi, 2), Table::num(t_ref / t_hyb, 2),
                 Table::num(100.0 * locks, 0) + "%"});
      xs.push_back(bpp);
      mpi_eff.push_back(t_ref / t_mpi);
      hyb_eff.push_back(t_ref / t_hyb);
    }
    plot.add_series({"MPI rc=" + Table::num(rcf, 1), xs, mpi_eff});
    plot.add_series({"hybrid rc=" + Table::num(rcf, 1), xs, hyb_eff});
  }
  out << t.render() << "\n" << plot.render() << "\n" << shape_notes;
  emit(figure, out.str());
  return 0;
}

}  // namespace hdem::bench
