// Figure 7 — "Efficiency of D = 2 MPI and hybrid models versus
// granularity B/P, normalised to MPI with B/P = 1" on the ES40 cluster.
#include "hybrid_granularity.hpp"

int main(int argc, char** argv) {
  return hdem::bench::run_hybrid_granularity_bench(
      argc, argv, /*D=*/2, hdem::ReductionKind::kSelectedAtomic, "fig7.txt",
      "Fig 7: D=2 MPI (P=16) vs hybrid (P=4, T=4) efficiency vs B/P",
      "Paper shape checks:\n"
      "  - the hybrid code is significantly slower than MPI for all B/P\n"
      "  - lock fraction grows with B/P but tops out near ~25% for D=2,\n"
      "    hence the gentler hybrid decay than in Figure 8\n");
}
