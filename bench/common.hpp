// Shared infrastructure for the paper-reproduction benches.
//
// Every bench follows the same recipe:
//   1. measure the real instrumented simulation at a reduced system size,
//   2. calibrate the serial kernel constants of the three paper platforms
//      against Tables 1/2 (once; shared),
//   3. ask the cost model for predicted per-iteration times at the paper's
//      one-million-particle scale, and
//   4. print the paper-style table + ASCII figure and save it under
//      results/.
#pragma once

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "perf/calibrate.hpp"
#include "perf/cost_model.hpp"
#include "perf/machine.hpp"
#include "perf/measure.hpp"
#include "perf/paper_data.hpp"
#include "perf/report.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace hdem::bench {

struct BenchContext {
  std::uint64_t n2 = 48'000;   // particles for D = 2 measurements
  std::uint64_t n3 = 64'000;   // particles for D = 3 measurements
  std::uint64_t iters = 3;     // steady-state iterations per measurement
  std::uint64_t calib_n = 30'000;
  bool verbose = false;
  perf::MachineSpec t3e, sun, cpq;
  std::vector<perf::CalibrationResult> calibrations;  // T3E, Sun, CPQ

  std::uint64_t n_for(int D) const { return D == 2 ? n2 : n3; }

  const perf::MachineSpec& machine(const std::string& name) const {
    if (name == "T3E") return t3e;
    if (name == "Sun") return sun;
    return cpq;
  }
};

// Declare the common CLI options; call before cli.finish().
inline void declare_common_options(Cli& cli, BenchContext& ctx) {
  ctx.n2 = static_cast<std::uint64_t>(
      cli.integer("n2", static_cast<std::int64_t>(ctx.n2),
                  "particles for D=2 measurements"));
  ctx.n3 = static_cast<std::uint64_t>(
      cli.integer("n3", static_cast<std::int64_t>(ctx.n3),
                  "particles for D=3 measurements"));
  ctx.iters = static_cast<std::uint64_t>(
      cli.integer("iters", static_cast<std::int64_t>(ctx.iters),
                  "measured iterations per configuration"));
  ctx.verbose = cli.flag("verbose", "print raw measurements");
  if (cli.flag("full", "paper-scale measurements (1M particles; slow)")) {
    ctx.n2 = 1'000'000;
    ctx.n3 = 1'000'000;
    ctx.calib_n = 250'000;
  }
}

// Calibrate the three platforms' serial kernel constants against the
// paper's Tables 1 and 2, from real serial runs of this library.
inline void calibrate_platforms(BenchContext& ctx) {
  std::vector<perf::RunMeasurement> runs;
  for (bool reorder : {false, true}) {
    for (auto [D, rcf] : {std::pair{2, 1.5}, {2, 2.0}, {3, 1.5}, {3, 2.0}}) {
      perf::MeasureSpec s;
      s.D = D;
      s.n = ctx.calib_n;
      s.rc_factor = rcf;
      s.reorder = reorder;
      s.mode = perf::MeasureSpec::Mode::kSerial;
      s.iterations = ctx.iters;
      runs.push_back(perf::measure_run(s).run);
    }
  }
  ctx.calibrations.clear();
  for (const auto& base :
       {perf::t3e900(), perf::sun_hpc3500(), perf::compaq_es40_cluster()}) {
    std::vector<perf::CalibrationObservation> obs;
    for (const auto& r : runs) {
      obs.push_back({r, perf::paper_serial_seconds(base.name, r.D,
                                                   r.rc_factor, r.reordered)});
    }
    auto res = perf::calibrate(base, obs, perf::kPaperParticles);
    if (base.name == "T3E") ctx.t3e = res.spec;
    if (base.name == "Sun") ctx.sun = res.spec;
    if (base.name == "CPQ") ctx.cpq = res.spec;
    ctx.calibrations.push_back(std::move(res));
  }
}

// Predicted per-iteration seconds on `machine` for `run`, extrapolated to
// the paper's one-million-particle system.
inline double predict_paper_seconds(const perf::MachineSpec& machine,
                                    const perf::RunMeasurement& run,
                                    int ranks_per_node) {
  const auto layout =
      perf::paper_scale_layout(run, ranks_per_node, perf::kPaperParticles);
  return perf::CostModel::predict(machine, run, layout).total();
}

// How many MPI ranks share an SMP node on this machine for a pure
// message-passing run that fills nodes before spilling to the next one.
inline int mpi_ranks_per_node(const perf::MachineSpec& machine, int nprocs) {
  return nprocs < machine.cpus_per_node ? nprocs : machine.cpus_per_node;
}

// Print to stdout and save the same content under results/<name>.
inline void emit(const std::string& name, const std::string& content) {
  std::fputs(content.c_str(), stdout);
  std::fflush(stdout);
  perf::save_artifact(name, content);
}

// -- JSON emit helpers for the BENCH_*.json artifacts --------------------
// Escaping and number formatting in one place instead of per-bench
// ostringstream incantations; non-finite numbers become null so a NaN in
// a measurement can never produce an unparseable artifact.

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_str(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

inline std::string json_bool(bool v) { return v ? "true" : "false"; }

// Comma placement handled once; values arrive already rendered (use
// json_num/json_str/json_bool or a nested render()).
class JsonObject {
 public:
  JsonObject& raw(const std::string& key, const std::string& value) {
    os_ << (first_ ? "" : ", ") << json_str(key) << ": " << value;
    first_ = false;
    return *this;
  }
  JsonObject& num(const std::string& key, double v) {
    return raw(key, json_num(v));
  }
  JsonObject& str(const std::string& key, const std::string& v) {
    return raw(key, json_str(v));
  }
  JsonObject& boolean(const std::string& key, bool v) {
    return raw(key, json_bool(v));
  }
  std::string render() const { return "{" + os_.str() + "}"; }

 private:
  std::ostringstream os_;
  bool first_ = true;
};

class JsonArray {
 public:
  JsonArray& push(const std::string& value) {
    os_ << (first_ ? "" : ", ") << value;
    first_ = false;
    return *this;
  }
  std::string render() const { return "[" + os_.str() + "]"; }

 private:
  std::ostringstream os_;
  bool first_ = true;
};

inline std::string calibration_report(const BenchContext& ctx) {
  Table t({"platform", "t_pair(ns)", "t_pair3(ns)", "t_update(ns)",
           "t_contact(ns)", "t_mem_l1(ns)", "t_mem(ns)", "mean|rel err|",
           "max|rel err|"});
  for (const auto& c : ctx.calibrations) {
    t.add_row({c.spec.name, Table::num(c.spec.t_pair * 1e9, 1),
               Table::num(c.spec.t_pair3 * 1e9, 1),
               Table::num(c.spec.t_update * 1e9, 1),
               Table::num(c.spec.t_contact * 1e9, 1),
               Table::num(c.spec.t_mem_l1 * 1e9, 1),
               Table::num(c.spec.t_mem * 1e9, 1),
               Table::num(100 * c.mean_rel_error, 1) + "%",
               Table::num(100 * c.max_rel_error, 1) + "%"});
  }
  return "Serial kernel constants fitted to the paper's Tables 1 & 2:\n" +
         t.render() + "\n";
}

}  // namespace hdem::bench
