// Figure 8 — "Efficiency of D = 3 MPI and hybrid models versus
// granularity B/P, normalised to MPI with B/P = 1" on the ES40 cluster.
#include "hybrid_granularity.hpp"

int main(int argc, char** argv) {
  return hdem::bench::run_hybrid_granularity_bench(
      argc, argv, /*D=*/3, hdem::ReductionKind::kSelectedAtomic, "fig8.txt",
      "Fig 8: D=3 MPI (P=16) vs hybrid (P=4, T=4) efficiency vs B/P",
      "Paper shape checks:\n"
      "  - hybrid starts close to MPI at B/P = 1 (closer for rc = 2.0) but\n"
      "    its efficiency decays faster with B\n"
      "  - the decay is driven by the force update: the lock fraction rises\n"
      "    towards ~50% at the finest granularity\n");
}
