// Quickstart: the smallest complete use of the library.
//
// Simulates the paper's benchmark system — identical elastic spheres with
// short-range contact forces in a periodic box — with the serial driver,
// and prints energies plus the operation counters every driver maintains.
//
//   ./quickstart [--n=20000] [--steps=200] [--dim3]
#include <cstdio>

#include "core/serial_sim.hpp"
#include "util/cli.hpp"

using namespace hdem;

template <int D>
int run(std::uint64_t n, std::uint64_t steps) {
  // 1. Configure the system: box size chosen for the paper's density,
  //    spheres of diameter 0.05, cutoff rc = 1.5 rmax.
  SimConfig<D> cfg;
  cfg.box = Vec<D>(SimConfig<D>::paper_box_edge(n));
  cfg.cutoff_factor = 1.5;
  cfg.seed = 2026;

  // 2. Create the simulation from a uniform random initial condition.
  auto sim = SerialSim<D>::make_random(
      cfg, ElasticSphere{cfg.stiffness, cfg.diameter}, n);

  std::printf("n=%llu particles in a %dD box of edge %.3f, %zu links\n",
              static_cast<unsigned long long>(n), D, cfg.box[0],
              sim.links().size());

  // 3. Step.  The link list rebuilds itself automatically when any
  //    particle has drifted far enough to invalidate it.
  const double e0 = [&] {
    sim.step();
    return sim.total_energy();
  }();
  sim.run(steps - 1);

  // 4. Inspect results: energies and the paper-relevant counters.
  std::printf("energy: initial %.6f  final %.6f  (drift %.2e)\n", e0,
              sim.total_energy(),
              std::abs(sim.total_energy() - e0) / std::abs(e0));
  std::printf("%s", sim.counters().summary().c_str());
  return 0;
}

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(
      cli.integer("n", 20000, "number of particles"));
  const auto steps = static_cast<std::uint64_t>(
      cli.integer("steps", 200, "iterations to run"));
  const bool dim3 = cli.flag("dim3", "simulate in 3-D instead of 2-D");
  if (cli.finish()) return 0;
  return dim3 ? run<3>(n, steps) : run<2>(n, steps);
}
