// Hybrid cluster demo: the same simulation under all four drivers.
//
// Runs the benchmark system serially, with threads (the OpenMP analogue),
// with message passing (block-cyclic ranks), and with the hybrid scheme
// (ranks x thread teams), verifies they produce identical physics, and
// prints each driver's overhead profile plus the modelled time on the
// paper's Compaq ES40 cluster.
//
//   ./hybrid_cluster [--n=8000] [--steps=60] [--blocks-per-proc=4]
//                    [--rebalance] [--steal] [--skin=0.3] [--auto]
//
// With --auto the hybrid leg's rank x thread split is chosen by the
// fitted per-phase scaling model (perf/tune.hpp) instead of the fixed
// 2 x 2: the model is fitted from --tune-file (measuring and saving a
// sweep there first when it does not exist), the top predicted
// configurations are printed, and the best split of 4 CPUs runs the
// hybrid leg.  The choice never moves a trajectory bit — every split
// integrates the same physics.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>
#include <vector>

#include "core/serial_sim.hpp"
#include "driver/mp_sim.hpp"
#include "driver/smp_sim.hpp"
#include "perf/machine.hpp"
#include "perf/report.hpp"
#include "perf/tune.hpp"
#include "util/cli.hpp"
#include "util/decomp_cli.hpp"
#include "util/halo_cli.hpp"
#include "util/skin_cli.hpp"
#include "util/tune_cli.hpp"

using namespace hdem;

namespace {

// Load the tune file, or measure a small hybrid-shaped grid over this
// workload and save it there first.
perf::FittedModel ensure_hybrid_model(const TuneCliOptions& tune,
                                      const perf::TuneWorkload& w,
                                      double skin_v) {
  const std::string path = tune.tune_file_path("hybrid");
  if (std::filesystem::exists(path)) {
    std::printf("auto: fitting scaling model from %s\n", path.c_str());
    return perf::fit_model(perf::load_tune_rows(path));
  }
  std::printf("auto: no tune file at %s; measuring a hybrid sweep...\n",
              path.c_str());
  perf::SweepSpec sweep;
  sweep.workload = w;
  sweep.skins = {skin_v};
  sweep.iterations = 6;
  sweep.warmup = 2;
  sweep.min_seconds = 0.01;
  sweep.max_cpus = 4;
  const auto rows = perf::run_sweep(sweep);
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  out << perf::format_tune_rows(rows);
  std::printf("auto: saved %zu measurement rows to %s\n", rows.size(),
              path.c_str());
  return perf::fit_model(rows);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n =
      static_cast<std::uint64_t>(cli.integer("n", 8000, "particles"));
  const auto steps =
      static_cast<std::uint64_t>(cli.integer("steps", 60, "iterations"));
  const auto decomp = declare_decomp_options(cli, {4});
  const auto skin = declare_skin_options(cli);
  const auto halo = declare_halo_options(cli);
  const TuneCliOptions tune = declare_tune_options(cli);
  if (cli.finish()) return 0;
  // Stealing rides the colored reduction; the atomic-family default stays
  // for the plain run so the locked-update column remains meaningful.
  const ReductionKind reduction = decomp.steal
                                      ? ReductionKind::kColored
                                      : ReductionKind::kSelectedAtomic;

  SimConfig<2> cfg;
  cfg.box = Vec<2>(SimConfig<2>::paper_box_edge(n));
  cfg.seed = 99;
  cfg.skin_factor = skin.skin;
  cfg.skin_cap_factor = skin.skin_cap;
  halo.apply(cfg);
  const ElasticSphere model{cfg.stiffness, cfg.diameter};
  const auto init = uniform_random_particles(cfg, n);

  // --- serial reference ------------------------------------------------
  SerialSim<2> serial(cfg, model, init);
  serial.run(steps);
  std::printf("list reuse (serial): %s\n",
              perf::reuse_line(perf::reuse_summary(serial.counters()))
                  .c_str());
  std::map<int, Vec<2>> ref;
  for (std::size_t i = 0; i < serial.store().size(); ++i) {
    Vec<2> p = serial.store().pos(i);
    serial.boundary().wrap(p);
    ref[serial.store().id(i)] = p;
  }
  std::printf("serial:  energy %.6f\n", serial.total_energy());

  // --- threads (pure shared memory, links decomposed over 4 threads) ----
  SmpSim<2> smp(cfg, model, init, 4, reduction, decomp.steal);
  smp.run(steps);
  double smp_err = 0.0;
  for (std::size_t i = 0; i < smp.store().size(); ++i) {
    Vec<2> p = smp.store().pos(i);
    Boundary<2>(cfg.bc, cfg.box).wrap(p);
    smp_err = std::max(smp_err, norm(p - ref.at(smp.store().id(i))));
  }
  const auto smp_c = smp.counters();
  std::printf(
      "threads: energy %.6f  max dev %.1e  regions %llu  locked %.1f%%\n",
      smp.total_energy(), smp_err,
      static_cast<unsigned long long>(smp_c.parallel_regions),
      100.0 * static_cast<double>(smp_c.atomic_updates) /
          static_cast<double>(smp_c.atomic_updates + smp_c.plain_updates));

  // --- pure message passing: 4 ranks, --blocks-per-proc blocks each ------
  const auto layout =
      DecompLayout<2>::make(4, static_cast<int>(decomp.bpp()));
  mp::run(4, [&](mp::Comm& comm) {
    MpSim<2>::Options mp_opts;
    mp_opts.rebalance = decomp.rebalance;
    mp_opts.rebalance_threshold = decomp.rebalance_threshold;
    mp_opts.shared_halo = decomp.shared_halo;
    mp_opts.ranks_per_node = static_cast<int>(decomp.ranks_per_node);
    MpSim<2> sim(cfg, layout, comm, model, init, mp_opts);
    sim.run(steps);
    const double energy = sim.global_energy();
    auto state = sim.gather_state();
    if (comm.rank() != 0) return;
    double err = 0.0;
    Boundary<2> bc(cfg.bc, cfg.box);
    for (auto& r : state) {
      Vec<2> q = r.pos;
      bc.wrap(q);
      err = std::max(err, norm(bc.displacement(q, ref.at(r.id))));
    }
    const auto c = sim.counters();
    std::printf(
        "mp:      energy %.6f  max dev %.1e  msgs %llu  bytes %llu  "
        "halo %llu\n",
        energy, err, static_cast<unsigned long long>(c.msgs_sent),
        static_cast<unsigned long long>(c.bytes_sent),
        static_cast<unsigned long long>(c.halo_particles));
    std::printf("  halo swap (mp): %s\n",
                perf::halo_line(perf::halo_summary(c)).c_str());
  });

  // --- hybrid: ranks x threads over the same 4 CPUs ------------------------
  // Fixed 2 x 2 by default; with --auto the fitted model ranks the
  // possible splits and the best predicted one runs.
  int hybrid_procs = 2;
  int hybrid_threads = 2;
  if (tune.auto_mode) {
    perf::TuneWorkload w;
    w.n = n;
    w.velocity_scale = cfg.velocity_scale;
    const perf::FittedModel fitted = ensure_hybrid_model(tune, w, skin.skin);
    std::vector<perf::TuneConfig> candidates;
    for (const auto& [p_c, t_c] : {std::pair{1, 4}, {2, 2}, {4, 1}}) {
      perf::TuneConfig c;
      c.nprocs = p_c;
      c.nthreads = t_c;
      c.blocks_per_proc = (4 / p_c) * static_cast<int>(decomp.bpp());
      c.skin = skin.skin;
      c.skin_cap = skin.skin_cap;
      c.halo_delta = cfg.halo_delta;
      c.halo_coalesce = cfg.halo_coalesce;
      c.steal = decomp.steal;
      c.rebalance = decomp.rebalance;
      candidates.push_back(c);
    }
    const auto ranked = perf::predict_ranked(fitted, w, candidates);
    double fit_err = 0.0;
    int fit_cnt = 0;
    for (int p = 0; p < perf::FittedModel::kPhaseCount; ++p) {
      const double e = fitted.mean_rel_error[static_cast<std::size_t>(p)];
      if (e > 0.0) {
        fit_err += e;
        ++fit_cnt;
      }
    }
    if (fit_cnt > 0) fit_err /= fit_cnt;
    std::printf("\nauto: predicted 4-CPU splits (model mean fit error "
                "%.0f%%):\n", 1e2 * fit_err);
    for (const auto& r : ranked) {
      std::printf("  P=%d T=%d B=%d  step %.2f ms  "
                  "(force %.2f  rebuild %.2f  halo %.2f  other %.2f)\n",
                  r.config.nprocs, r.config.nthreads,
                  r.config.blocks_per_proc, 1e3 * r.step_seconds,
                  1e3 * r.predicted[perf::FittedModel::kForce],
                  1e3 * r.predicted[perf::FittedModel::kRebuild],
                  1e3 * r.predicted[perf::FittedModel::kHalo],
                  1e3 * r.predicted[perf::FittedModel::kOther]);
    }
    hybrid_procs = ranked.front().config.nprocs;
    hybrid_threads = ranked.front().config.nthreads;
    std::printf("auto: hybrid leg runs %d rank(s) x %d thread(s)\n\n",
                hybrid_procs, hybrid_threads);
  }
  const auto hybrid_layout = DecompLayout<2>::make(
      hybrid_procs,
      (4 / hybrid_procs) * static_cast<int>(decomp.bpp()));
  mp::run(hybrid_procs, [&](mp::Comm& comm) {
    MpSim<2>::Options opts;
    opts.nthreads = hybrid_threads;
    opts.reduction = reduction;
    opts.steal = decomp.steal;
    opts.rebalance = decomp.rebalance;
    opts.rebalance_threshold = decomp.rebalance_threshold;
    opts.shared_halo = decomp.shared_halo;
    opts.ranks_per_node = static_cast<int>(decomp.ranks_per_node);
    MpSim<2> sim(cfg, hybrid_layout, comm, model, init, opts);
    sim.run(steps);
    const double energy = sim.global_energy();
    auto state = sim.gather_state();
    if (comm.rank() != 0) return;
    double err = 0.0;
    Boundary<2> bc(cfg.bc, cfg.box);
    for (auto& r : state) {
      Vec<2> q = r.pos;
      bc.wrap(q);
      err = std::max(err, norm(bc.displacement(q, ref.at(r.id))));
    }
    const auto c = sim.counters();
    std::printf(
        "hybrid:  energy %.6f  max dev %.1e  msgs %llu  regions %llu\n",
        energy, err, static_cast<unsigned long long>(c.msgs_sent),
        static_cast<unsigned long long>(c.parallel_regions));
    std::printf("  halo swap (hybrid): %s\n",
                perf::halo_line(perf::halo_summary(c)).c_str());
  });

  std::printf(
      "\nAll four drivers integrate the same trajectory (deviations are\n"
      "floating-point summation order only).  The overhead columns above —\n"
      "messages for the decomposed runs, parallel regions and locked-update\n"
      "fractions for the threaded ones — are the quantities the paper's\n"
      "evaluation turns into Figures 1-8; see bench/ for the full\n"
      "reproduction on the modelled T3E / Sun / Compaq platforms.\n");
  return 0;
}
