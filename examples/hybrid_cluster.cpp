// Hybrid cluster demo: the same simulation under all four drivers.
//
// Runs the benchmark system serially, with threads (the OpenMP analogue),
// with message passing (block-cyclic ranks), and with the hybrid scheme
// (ranks x thread teams), verifies they produce identical physics, and
// prints each driver's overhead profile plus the modelled time on the
// paper's Compaq ES40 cluster.
//
//   ./hybrid_cluster [--n=8000] [--steps=60] [--blocks-per-proc=4]
//                    [--rebalance] [--steal] [--skin=0.3]
#include <cstdio>
#include <map>

#include "core/serial_sim.hpp"
#include "driver/mp_sim.hpp"
#include "driver/smp_sim.hpp"
#include "perf/machine.hpp"
#include "perf/report.hpp"
#include "util/cli.hpp"
#include "util/decomp_cli.hpp"
#include "util/halo_cli.hpp"
#include "util/skin_cli.hpp"

using namespace hdem;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n =
      static_cast<std::uint64_t>(cli.integer("n", 8000, "particles"));
  const auto steps =
      static_cast<std::uint64_t>(cli.integer("steps", 60, "iterations"));
  const auto decomp = declare_decomp_options(cli, {4});
  const auto skin = declare_skin_options(cli);
  const auto halo = declare_halo_options(cli);
  if (cli.finish()) return 0;
  // Stealing rides the colored reduction; the atomic-family default stays
  // for the plain run so the locked-update column remains meaningful.
  const ReductionKind reduction = decomp.steal
                                      ? ReductionKind::kColored
                                      : ReductionKind::kSelectedAtomic;

  SimConfig<2> cfg;
  cfg.box = Vec<2>(SimConfig<2>::paper_box_edge(n));
  cfg.seed = 99;
  cfg.skin_factor = skin.skin;
  cfg.skin_cap_factor = skin.skin_cap;
  halo.apply(cfg);
  const ElasticSphere model{cfg.stiffness, cfg.diameter};
  const auto init = uniform_random_particles(cfg, n);

  // --- serial reference ------------------------------------------------
  SerialSim<2> serial(cfg, model, init);
  serial.run(steps);
  std::printf("list reuse (serial): %s\n",
              perf::reuse_line(perf::reuse_summary(serial.counters()))
                  .c_str());
  std::map<int, Vec<2>> ref;
  for (std::size_t i = 0; i < serial.store().size(); ++i) {
    Vec<2> p = serial.store().pos(i);
    serial.boundary().wrap(p);
    ref[serial.store().id(i)] = p;
  }
  std::printf("serial:  energy %.6f\n", serial.total_energy());

  // --- threads (pure shared memory, links decomposed over 4 threads) ----
  SmpSim<2> smp(cfg, model, init, 4, reduction, decomp.steal);
  smp.run(steps);
  double smp_err = 0.0;
  for (std::size_t i = 0; i < smp.store().size(); ++i) {
    Vec<2> p = smp.store().pos(i);
    Boundary<2>(cfg.bc, cfg.box).wrap(p);
    smp_err = std::max(smp_err, norm(p - ref.at(smp.store().id(i))));
  }
  const auto smp_c = smp.counters();
  std::printf(
      "threads: energy %.6f  max dev %.1e  regions %llu  locked %.1f%%\n",
      smp.total_energy(), smp_err,
      static_cast<unsigned long long>(smp_c.parallel_regions),
      100.0 * static_cast<double>(smp_c.atomic_updates) /
          static_cast<double>(smp_c.atomic_updates + smp_c.plain_updates));

  // --- pure message passing: 4 ranks, --blocks-per-proc blocks each ------
  const auto layout =
      DecompLayout<2>::make(4, static_cast<int>(decomp.bpp()));
  mp::run(4, [&](mp::Comm& comm) {
    MpSim<2>::Options mp_opts;
    mp_opts.rebalance = decomp.rebalance;
    mp_opts.rebalance_threshold = decomp.rebalance_threshold;
    mp_opts.shared_halo = decomp.shared_halo;
    mp_opts.ranks_per_node = static_cast<int>(decomp.ranks_per_node);
    MpSim<2> sim(cfg, layout, comm, model, init, mp_opts);
    sim.run(steps);
    const double energy = sim.global_energy();
    auto state = sim.gather_state();
    if (comm.rank() != 0) return;
    double err = 0.0;
    Boundary<2> bc(cfg.bc, cfg.box);
    for (auto& r : state) {
      Vec<2> q = r.pos;
      bc.wrap(q);
      err = std::max(err, norm(bc.displacement(q, ref.at(r.id))));
    }
    const auto c = sim.counters();
    std::printf(
        "mp:      energy %.6f  max dev %.1e  msgs %llu  bytes %llu  "
        "halo %llu\n",
        energy, err, static_cast<unsigned long long>(c.msgs_sent),
        static_cast<unsigned long long>(c.bytes_sent),
        static_cast<unsigned long long>(c.halo_particles));
    std::printf("  halo swap (mp): %s\n",
                perf::halo_line(perf::halo_summary(c)).c_str());
  });

  // --- hybrid: 2 ranks ("nodes") x 2 threads each -------------------------
  const auto hybrid_layout =
      DecompLayout<2>::make(2, 2 * static_cast<int>(decomp.bpp()));
  mp::run(2, [&](mp::Comm& comm) {
    MpSim<2>::Options opts;
    opts.nthreads = 2;
    opts.reduction = reduction;
    opts.steal = decomp.steal;
    opts.rebalance = decomp.rebalance;
    opts.rebalance_threshold = decomp.rebalance_threshold;
    opts.shared_halo = decomp.shared_halo;
    opts.ranks_per_node = static_cast<int>(decomp.ranks_per_node);
    MpSim<2> sim(cfg, hybrid_layout, comm, model, init, opts);
    sim.run(steps);
    const double energy = sim.global_energy();
    auto state = sim.gather_state();
    if (comm.rank() != 0) return;
    double err = 0.0;
    Boundary<2> bc(cfg.bc, cfg.box);
    for (auto& r : state) {
      Vec<2> q = r.pos;
      bc.wrap(q);
      err = std::max(err, norm(bc.displacement(q, ref.at(r.id))));
    }
    const auto c = sim.counters();
    std::printf(
        "hybrid:  energy %.6f  max dev %.1e  msgs %llu  regions %llu\n",
        energy, err, static_cast<unsigned long long>(c.msgs_sent),
        static_cast<unsigned long long>(c.parallel_regions));
    std::printf("  halo swap (hybrid): %s\n",
                perf::halo_line(perf::halo_summary(c)).c_str());
  });

  std::printf(
      "\nAll four drivers integrate the same trajectory (deviations are\n"
      "floating-point summation order only).  The overhead columns above —\n"
      "messages for the decomposed runs, parallel regions and locked-update\n"
      "fractions for the threaded ones — are the quantities the paper's\n"
      "evaluation turns into Figures 1-8; see bench/ for the full\n"
      "reproduction on the modelled T3E / Sun / Compaq platforms.\n");
  return 0;
}
