// Multi-tenant simulation server: many independent DEM jobs multiplexed
// over one shared thread team.
//
// The paper's shared-memory result, applied to serving: instead of one
// team per simulation (oversubscribing the node) or one simulation at a
// time (idling it), a single persistent ThreadTeam serves a whole job
// trace through the work-stealing scheduler in src/serve.  Each job is an
// independent trajectory (scenario, particle count, step budget, deadline
// class); results stream to per-job checkpoint files that any driver can
// resume from.
//
// A job trace is a text file, one job per line:
//
//     # scenario  n  steps  deadline
//     uniform    1200  200  batch
//     clustered   800  120  interactive
//
// Without --trace a synthetic mixed trace of --jobs jobs is generated.
// With --verify every served trajectory is re-run standalone after the
// serve and the checkpoint bytes compared — exits nonzero on any mismatch
// (the CI serving smoke runs this).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "serve/scheduler.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hdem;

namespace {

std::string checkpoint_name(const std::string& dir, std::uint64_t job_id) {
  return (std::filesystem::path(dir) /
          ("job_" + std::to_string(job_id) + ".ckp"))
      .string();
}

// Parse "scenario n steps deadline" lines; '#' starts a comment.
std::vector<serve::JobSpec> read_trace(const std::string& path,
                                       std::uint64_t seed) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("sim_server: cannot open trace " + path);
  std::vector<serve::JobSpec> specs;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream is(line);
    std::string scenario, deadline;
    std::uint64_t n = 0, steps = 0;
    if (!(is >> scenario >> n >> steps >> deadline)) continue;  // blank line
    serve::JobSpec spec;
    spec.job_id = specs.size();
    spec.scenario = serve::scenario_from_string(scenario);
    spec.n = n;
    spec.steps = steps;
    spec.deadline = serve::deadline_from_string(deadline);
    spec.seed = seed;
    specs.push_back(spec);
  }
  if (specs.empty()) {
    throw std::runtime_error("sim_server: trace has no jobs: " + path);
  }
  return specs;
}

// Synthetic mixed trace: cycling scenarios, varying sizes and budgets,
// every fourth job interactive — enough shape to exercise both priority
// lanes and uneven per-job cost.
std::vector<serve::JobSpec> synthetic_trace(std::uint64_t jobs,
                                            std::uint64_t seed) {
  const serve::Scenario cycle[3] = {serve::Scenario::kUniform,
                                    serve::Scenario::kClustered,
                                    serve::Scenario::kSettled};
  std::vector<serve::JobSpec> specs;
  for (std::uint64_t i = 0; i < jobs; ++i) {
    serve::JobSpec spec;
    spec.job_id = i;
    spec.scenario = cycle[i % 3];
    spec.n = 400 + 200 * (i % 4);
    spec.steps = 64 + 32 * (i % 3);
    spec.deadline = i % 4 == 3 ? serve::DeadlineClass::kInteractive
                               : serve::DeadlineClass::kBatch;
    spec.seed = seed;
    specs.push_back(spec);
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto jobs = static_cast<std::uint64_t>(
      cli.integer("jobs", 8, "synthetic trace size (ignored with --trace)"));
  const auto workers = static_cast<int>(
      cli.integer("workers", 2, "thread-team size serving the jobs"));
  const auto quantum = static_cast<std::uint64_t>(
      cli.integer("quantum-steps", 32, "steps per scheduling slice"));
  const auto seed = static_cast<std::uint64_t>(
      cli.integer("seed", 12345, "trace-wide scenario seed"));
  const std::string trace_path =
      cli.str("trace", "", "job trace file (scenario n steps deadline)");
  const std::string out_dir =
      cli.str("out-dir", "serve_out", "directory for per-job checkpoints");
  const bool verify = cli.flag(
      "verify", "re-run every job standalone and byte-compare checkpoints");
  if (cli.finish()) return 0;

  auto specs = trace_path.empty() ? synthetic_trace(jobs, seed)
                                  : read_trace(trace_path, seed);
  std::filesystem::create_directories(out_dir);
  for (auto& spec : specs) {
    spec.checkpoint_path = checkpoint_name(out_dir, spec.job_id);
  }

  std::printf("serving %zu jobs over %d workers (quantum %llu steps)\n\n",
              specs.size(), workers,
              static_cast<unsigned long long>(quantum));

  smp::ThreadTeam team(workers);
  serve::Scheduler sched(team, {.quantum_steps = quantum});
  std::vector<std::future<serve::JobResult>> futures;
  futures.reserve(specs.size());
  for (const auto& spec : specs) {
    futures.push_back(sched.submit(serve::make_job(spec)));
  }
  sched.drain();

  Table t({"job", "scenario", "class", "n", "steps", "quanta", "moves",
           "cost", "latency", "wall(ms)", "checkpoint"});
  std::vector<serve::JobResult> results;
  for (auto& f : futures) results.push_back(f.get());
  const auto stats = sched.stats();
  for (const auto& r : results) {
    const auto& spec = specs[static_cast<std::size_t>(r.job_id)];
    // Completion latency on the deterministic cost clock, in per-worker
    // work units (see serve/scheduler.hpp).
    const double latency =
        static_cast<double>(r.finish_cost - r.submit_cost) /
        static_cast<double>(stats.workers);
    t.add_row({std::to_string(r.job_id), to_string(spec.scenario),
               to_string(r.deadline), std::to_string(spec.n),
               std::to_string(r.steps), std::to_string(r.quanta),
               std::to_string(r.migrations), std::to_string(r.cost_units),
               Table::num(latency, 0), Table::num(1e3 * r.wall_seconds, 1),
               r.checkpoint_path});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("%s\n", perf::serve_line(serve::serve_summary(stats)).c_str());

  if (!verify) return 0;

  // Re-run each spec standalone and compare checkpoint bytes: the served
  // trajectory must be bit-identical to an isolated run of the same spec.
  std::printf("\nverifying %zu trajectories against standalone runs...\n",
              specs.size());
  int failures = 0;
  for (const auto& spec : specs) {
    serve::JobSpec solo = spec;
    solo.checkpoint_path = checkpoint_name(
        out_dir, spec.job_id) + ".verify";
    auto job = serve::make_job(solo);
    job->advance(solo.steps);
    const auto read = [](const std::string& p) {
      std::ifstream in(p, std::ios::binary);
      std::ostringstream os;
      os << in.rdbuf();
      return os.str();
    };
    const std::string served = read(spec.checkpoint_path);
    const std::string solo_bytes = read(solo.checkpoint_path);
    const bool same = !served.empty() && served == solo_bytes;
    if (!same) {
      std::fprintf(stderr, "FAIL: job %llu diverged from standalone run\n",
                   static_cast<unsigned long long>(spec.job_id));
      ++failures;
    }
    std::filesystem::remove(solo.checkpoint_path);
  }
  if (failures > 0) return 1;
  std::printf("all %zu trajectories bit-identical to standalone runs\n",
              specs.size());
  return 0;
}
