// Multi-tenant simulation server: many independent DEM jobs multiplexed
// over one shared thread team.
//
// The paper's shared-memory result, applied to serving: instead of one
// team per simulation (oversubscribing the node) or one simulation at a
// time (idling it), a single persistent ThreadTeam serves a whole job
// trace through the work-stealing scheduler in src/serve.  Each job is an
// independent trajectory (scenario, particle count, step budget, deadline
// class); results stream to per-job checkpoint files that any driver can
// resume from.
//
// A job trace is a text file, one job per line:
//
//     # scenario  n  steps  deadline
//     uniform    1200  200  batch
//     clustered   800  120  interactive
//
// Without --trace a synthetic mixed trace of --jobs jobs is generated.
// With --verify every served trajectory is re-run standalone after the
// serve and the checkpoint bytes compared — exits nonzero on any mismatch
// (the CI serving smoke runs this).
//
// With --auto the admission path consults the fitted per-phase scaling
// model (perf/tune.hpp): per job class it picks the inner-thread count
// (latency classes minimise predicted step time, batch classes predicted
// CPU-seconds), derives the scheduling quantum from the fastest predicted
// step, and places batch jobs longest-predicted-first onto the least
// loaded worker.  The model is fitted from --tune-file when it exists;
// otherwise a serving-shaped sweep is measured and saved there first, so
// the next run starts from measurements — the closed loop.  --auto only
// selects knobs that could equally be passed explicitly (--inner-threads,
// --quantum-steps), so trajectories are bit-identical either way; the
// fig15 gate and --verify enforce that.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "perf/tune.hpp"
#include "serve/scheduler.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/tune_cli.hpp"

using namespace hdem;

namespace {

std::string checkpoint_name(const std::string& dir, std::uint64_t job_id) {
  return (std::filesystem::path(dir) /
          ("job_" + std::to_string(job_id) + ".ckp"))
      .string();
}

// Parse "scenario n steps deadline" lines; '#' starts a comment.
std::vector<serve::JobSpec> read_trace(const std::string& path,
                                       std::uint64_t seed) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("sim_server: cannot open trace " + path);
  std::vector<serve::JobSpec> specs;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream is(line);
    std::string scenario, deadline;
    std::uint64_t n = 0, steps = 0;
    if (!(is >> scenario >> n >> steps >> deadline)) continue;  // blank line
    serve::JobSpec spec;
    spec.job_id = specs.size();
    spec.scenario = serve::scenario_from_string(scenario);
    spec.n = n;
    spec.steps = steps;
    spec.deadline = serve::deadline_from_string(deadline);
    spec.seed = seed;
    specs.push_back(spec);
  }
  if (specs.empty()) {
    throw std::runtime_error("sim_server: trace has no jobs: " + path);
  }
  return specs;
}

// Synthetic mixed trace: cycling scenarios, varying sizes and budgets,
// every fourth job interactive — enough shape to exercise both priority
// lanes and uneven per-job cost.
std::vector<serve::JobSpec> synthetic_trace(std::uint64_t jobs,
                                            std::uint64_t seed) {
  const serve::Scenario cycle[3] = {serve::Scenario::kUniform,
                                    serve::Scenario::kClustered,
                                    serve::Scenario::kSettled};
  std::vector<serve::JobSpec> specs;
  for (std::uint64_t i = 0; i < jobs; ++i) {
    serve::JobSpec spec;
    spec.job_id = i;
    spec.scenario = cycle[i % 3];
    spec.n = 400 + 200 * (i % 4);
    spec.steps = 64 + 32 * (i % 3);
    spec.deadline = i % 4 == 3 ? serve::DeadlineClass::kInteractive
                               : serve::DeadlineClass::kBatch;
    spec.seed = seed;
    specs.push_back(spec);
  }
  return specs;
}

// The tune-model workload class a job belongs to.
perf::TuneWorkload job_workload(const serve::JobSpec& spec) {
  perf::TuneWorkload w;
  w.scenario = serve::to_string(spec.scenario);
  w.D = spec.dim;
  w.n = spec.n;
  w.velocity_scale = spec.velocity_scale;
  w.settled_stride = spec.scenario == serve::Scenario::kSettled
                         ? spec.settled_stride
                         : 0;
  w.cluster_fraction = spec.scenario == serve::Scenario::kClustered
                           ? spec.clustered_fraction
                           : 1.0;
  return w;
}

// Load the tune file, or measure a serving-shaped sweep (P = 1, B = 1,
// thread counts up to the worker pool, one workload class per distinct
// trace scenario at its median size) and save it there first.
perf::FittedModel ensure_serving_model(const TuneCliOptions& tune,
                                       std::span<const serve::JobSpec> specs,
                                       int workers) {
  const std::string path = tune.tune_file_path("serving");
  if (std::filesystem::exists(path)) {
    std::printf("auto: fitting scaling model from %s\n", path.c_str());
    return perf::fit_model(perf::load_tune_rows(path));
  }
  std::printf("auto: no tune file at %s; measuring a serving sweep...\n",
              path.c_str());
  std::vector<int> threads{1};
  for (int t = 2; t <= workers; t *= 2) threads.push_back(t);
  if (workers > 1 && threads.back() != workers) threads.push_back(workers);
  std::vector<perf::TuneRow> rows;
  std::vector<serve::Scenario> seen;
  for (const auto& spec : specs) {
    if (std::find(seen.begin(), seen.end(), spec.scenario) != seen.end()) {
      continue;
    }
    seen.push_back(spec.scenario);
    std::vector<std::uint64_t> sizes;
    for (const auto& s : specs) {
      if (s.scenario == spec.scenario) sizes.push_back(s.n);
    }
    std::sort(sizes.begin(), sizes.end());
    perf::SweepSpec sweep;
    sweep.workload = job_workload(spec);
    sweep.workload.n = sizes[sizes.size() / 2];
    sweep.procs = {1};
    sweep.blocks = {1};
    sweep.threads = threads;
    sweep.skins = {spec.skin_factor};
    sweep.iterations = 6;
    sweep.warmup = 2;
    sweep.min_seconds = 0.01;
    const auto swept = perf::run_sweep(sweep);
    rows.insert(rows.end(), swept.begin(), swept.end());
  }
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  out << perf::format_tune_rows(rows);
  std::printf("auto: saved %zu measurement rows to %s\n", rows.size(),
              path.c_str());
  return perf::fit_model(rows);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto jobs = static_cast<std::uint64_t>(
      cli.integer("jobs", 8, "synthetic trace size (ignored with --trace)"));
  const auto workers = static_cast<int>(
      cli.integer("workers", 2, "thread-team size serving the jobs"));
  const auto quantum_opt = static_cast<std::uint64_t>(cli.integer(
      "quantum-steps", 0,
      "steps per scheduling slice (0: model-chosen with --auto, else 32)"));
  const auto inner_threads_opt = static_cast<int>(cli.integer(
      "inner-threads", 0,
      "inner team size per job (0: model-chosen with --auto, else 1)"));
  const auto seed = static_cast<std::uint64_t>(
      cli.integer("seed", 12345, "trace-wide scenario seed"));
  const std::string trace_path =
      cli.str("trace", "", "job trace file (scenario n steps deadline)");
  const std::string out_dir =
      cli.str("out-dir", "serve_out", "directory for per-job checkpoints");
  const bool verify = cli.flag(
      "verify", "re-run every job standalone and byte-compare checkpoints");
  const TuneCliOptions tune = declare_tune_options(cli);
  if (cli.finish()) return 0;

  auto specs = trace_path.empty() ? synthetic_trace(jobs, seed)
                                  : read_trace(trace_path, seed);
  std::filesystem::create_directories(out_dir);
  for (auto& spec : specs) {
    spec.checkpoint_path = checkpoint_name(out_dir, spec.job_id);
    if (inner_threads_opt > 0) spec.inner_threads = inner_threads_opt;
  }

  // Admission decisions.  placement[i] < 0 means the injector queue (the
  // default path; interactive jobs always take it so they spread one at a
  // time across workers).
  std::vector<int> placement(specs.size(), -1);
  std::uint64_t quantum = quantum_opt > 0 ? quantum_opt : 32;
  if (tune.auto_mode) {
    const perf::FittedModel model =
        ensure_serving_model(tune, specs, workers);
    std::vector<perf::ServingChoice> choices(specs.size());
    std::uint64_t auto_quantum = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto& spec = specs[i];
      const bool latency =
          spec.deadline == serve::DeadlineClass::kInteractive;
      choices[i] = perf::choose_serving(model, job_workload(spec),
                                        spec.skin_factor, latency, workers);
      if (inner_threads_opt == 0) {
        specs[i].inner_threads = choices[i].inner_threads;
      }
      // The scheduler's quantum is global; the fastest predicted step sets
      // it so the smallest job still bounds slice latency.
      if (auto_quantum == 0 || choices[i].quantum_steps < auto_quantum) {
        auto_quantum = choices[i].quantum_steps;
      }
    }
    if (quantum_opt == 0 && auto_quantum > 0) quantum = auto_quantum;

    // Longest-predicted-first placement of batch jobs onto the least
    // loaded worker (LPT); predicted wall cost of a job is its predicted
    // step time times its step budget.
    std::vector<std::size_t> batch_order;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].deadline == serve::DeadlineClass::kBatch) {
        batch_order.push_back(i);
      }
    }
    std::stable_sort(batch_order.begin(), batch_order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return choices[a].predicted_step_seconds *
                                  static_cast<double>(specs[a].steps) >
                              choices[b].predicted_step_seconds *
                                  static_cast<double>(specs[b].steps);
                     });
    std::vector<double> load(static_cast<std::size_t>(workers), 0.0);
    for (std::size_t i : batch_order) {
      const auto best = static_cast<int>(
          std::min_element(load.begin(), load.end()) - load.begin());
      placement[i] = best;
      load[static_cast<std::size_t>(best)] +=
          choices[i].predicted_step_seconds *
          static_cast<double>(specs[i].steps);
    }

    double fit_err = 0.0;
    int fit_cnt = 0;
    for (int p = 0; p < perf::FittedModel::kPhaseCount; ++p) {
      const double e = model.mean_rel_error[static_cast<std::size_t>(p)];
      if (e > 0.0) {
        fit_err += e;
        ++fit_cnt;
      }
    }
    if (fit_cnt > 0) fit_err /= fit_cnt;
    Table at({"job", "scenario", "class", "n", "threads", "quantum",
              "pred step(us)", "worker"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
      at.add_row({std::to_string(specs[i].job_id),
                  to_string(specs[i].scenario),
                  to_string(specs[i].deadline), std::to_string(specs[i].n),
                  std::to_string(specs[i].inner_threads),
                  std::to_string(choices[i].quantum_steps),
                  Table::num(1e6 * choices[i].predicted_step_seconds, 1),
                  placement[i] < 0 ? std::string("inject")
                                   : std::to_string(placement[i])});
    }
    std::printf("auto admission decisions (model mean fit error %.0f%%):\n%s\n",
                1e2 * fit_err, at.render().c_str());
  }

  std::printf("serving %zu jobs over %d workers (quantum %llu steps)\n\n",
              specs.size(), workers,
              static_cast<unsigned long long>(quantum));

  smp::ThreadTeam team(workers);
  serve::Scheduler sched(team, {.quantum_steps = quantum});
  std::vector<std::future<serve::JobResult>> futures;
  futures.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto job = serve::make_job(specs[i]);
    futures.push_back(placement[i] >= 0
                          ? sched.submit_to_worker(placement[i],
                                                   std::move(job))
                          : sched.submit(std::move(job)));
  }
  sched.drain();

  Table t({"job", "scenario", "class", "n", "steps", "quanta", "moves",
           "cost", "latency", "wall(ms)", "checkpoint"});
  std::vector<serve::JobResult> results;
  for (auto& f : futures) results.push_back(f.get());
  const auto stats = sched.stats();
  for (const auto& r : results) {
    const auto& spec = specs[static_cast<std::size_t>(r.job_id)];
    // Completion latency on the deterministic cost clock, in per-worker
    // work units (see serve/scheduler.hpp).
    const double latency =
        static_cast<double>(r.finish_cost - r.submit_cost) /
        static_cast<double>(stats.workers);
    t.add_row({std::to_string(r.job_id), to_string(spec.scenario),
               to_string(r.deadline), std::to_string(spec.n),
               std::to_string(r.steps), std::to_string(r.quanta),
               std::to_string(r.migrations), std::to_string(r.cost_units),
               Table::num(latency, 0), Table::num(1e3 * r.wall_seconds, 1),
               r.checkpoint_path});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("%s\n", perf::serve_line(serve::serve_summary(stats)).c_str());

  if (!verify) return 0;

  // Re-run each spec standalone and compare checkpoint bytes: the served
  // trajectory must be bit-identical to an isolated run of the same spec.
  std::printf("\nverifying %zu trajectories against standalone runs...\n",
              specs.size());
  int failures = 0;
  for (const auto& spec : specs) {
    serve::JobSpec solo = spec;
    solo.checkpoint_path = checkpoint_name(
        out_dir, spec.job_id) + ".verify";
    auto job = serve::make_job(solo);
    job->advance(solo.steps);
    const auto read = [](const std::string& p) {
      std::ifstream in(p, std::ios::binary);
      std::ostringstream os;
      os << in.rdbuf();
      return os.str();
    };
    const std::string served = read(spec.checkpoint_path);
    const std::string solo_bytes = read(solo.checkpoint_path);
    const bool same = !served.empty() && served == solo_bytes;
    if (!same) {
      std::fprintf(stderr, "FAIL: job %llu diverged from standalone run\n",
                   static_cast<unsigned long long>(spec.job_id));
      ++failures;
    }
    std::filesystem::remove(solo.checkpoint_path);
  }
  if (failures > 0) return 1;
  std::printf("all %zu trajectories bit-identical to standalone runs\n",
              specs.size());
  return 0;
}
