// Sandpile: the physics application that motivates the paper.
//
// "A typical simulation might involve letting particles fall under gravity
// onto a solid surface to form 'sand-piles'.  These piles form and grow
// dynamically, and hence there is an ever-changing spatial distribution of
// clusters of particles; load-balance is clearly one of the key issues for
// any parallel implementation."
//
// Particles rain down in a walled 2-D box, settle into a pile, and we
// measure exactly the load-imbalance the paper is about: how unevenly the
// *work* (links) distributes over a block decomposition, and how a finer
// block-cyclic granularity repairs it.
//
//   ./sandpile [--n=4000] [--steps=4000] [--blocks-per-proc=1,4,16,64]
//              [--skin=0.3]
#include <cstdio>
#include <vector>

#include "core/serial_sim.hpp"
#include "io/checkpoint.hpp"
#include "decomp/layout.hpp"
#include "decomp/rebalance.hpp"
#include "perf/report.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/decomp_cli.hpp"
#include "util/skin_cli.hpp"

using namespace hdem;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(
      cli.integer("n", 4000, "number of grains of sand"));
  const auto steps = static_cast<std::uint64_t>(
      cli.integer("steps", 4000, "settling iterations"));
  const auto decomp = declare_decomp_options(cli, {1, 4, 16, 64});
  const auto skin = declare_skin_options(cli);
  if (cli.finish()) return 0;

  SimConfig<2> cfg;
  cfg.box = Vec<2>(2.0, 2.0);
  cfg.bc = BoundaryKind::kWalls;
  cfg.gravity = Vec<2>(0.0, -2.0);
  cfg.stiffness = 400.0;
  cfg.velocity_scale = 0.1;
  cfg.dt = 4e-4;
  cfg.seed = 7;
  // A settled pile is the skin's best case: drift shrinks as the sand
  // comes to rest, so one candidate list serves longer and longer runs of
  // steps (the reuse line below shows the amortisation).
  cfg.skin_factor = skin.skin;
  cfg.skin_cap_factor = skin.skin_cap;

  // Start from particles suspended through the box; gravity does the rest.
  auto sim = SerialSim<2>::make_random(
      cfg, ElasticSphere{cfg.stiffness, cfg.diameter}, n);
  std::printf("dropping %llu particles under gravity...\n",
              static_cast<unsigned long long>(n));
  sim.run(steps);
  std::printf("list reuse: %s\n",
              perf::reuse_line(perf::reuse_summary(sim.counters())).c_str());

  // Height histogram of the settled pile.
  constexpr int kRows = 12;
  std::vector<int> rows(kRows, 0);
  for (std::size_t i = 0; i < sim.store().size(); ++i) {
    int r = static_cast<int>(sim.store().pos(i)[1] / cfg.box[1] * kRows);
    if (r >= kRows) r = kRows - 1;
    if (r < 0) r = 0;
    ++rows[static_cast<std::size_t>(r)];
  }
  std::printf("\nsettled density profile (fraction of particles per height "
              "band):\n");
  for (int r = kRows - 1; r >= 0; --r) {
    const double frac = static_cast<double>(rows[static_cast<std::size_t>(r)]) /
                        static_cast<double>(n);
    std::printf("  y=%4.2f |%-50s| %4.1f%%\n",
                (r + 0.5) * cfg.box[1] / kRows,
                std::string(static_cast<std::size_t>(frac * 150.0), '#')
                    .substr(0, 50)
                    .c_str(),
                100.0 * frac);
  }

  // The parallel question: how badly is per-block *work* (links, which is
  // what the force loop iterates over) imbalanced at each granularity?
  // This is the paper's case for block-cyclic distributions and for
  // shared-memory load balancing.
  std::printf("\nwork imbalance over a 2x2 process grid (P=4):\n");
  std::printf("  %-10s %-8s %-20s %s\n", "B/P", "blocks",
              "max/mean (cyclic)", decomp.rebalance ? "max/mean (LPT)" : "");
  for (const std::int64_t bpp : decomp.blocks_per_proc) {
    auto layout = DecompLayout<2>::make(4, static_cast<int>(bpp));
    // Per-block link load: the cost vector the adaptive rebalancer would
    // exchange at a rebuild.
    std::vector<std::uint64_t> block_links(
        static_cast<std::size_t>(layout.nblocks()), 0);
    for (const auto& link : sim.links().links) {
      // Attribute each link to the block owning its first particle.
      const auto c = layout.block_of_position(
          sim.store().pos(static_cast<std::size_t>(link.i)), cfg.box);
      ++block_links[static_cast<std::size_t>(layout.block_index(c))];
    }
    const auto ratio = [&](std::span<const int> table) {
      return static_cast<double>(
                 imbalance_permille(block_links, table, 4)) /
             1000.0;
    };
    const double cyclic = ratio(layout.assignment());
    if (decomp.rebalance) {
      const double lpt = ratio(lpt_assignment<2>(layout, block_links));
      std::printf("  %-10lld %-8d %-20.2f %.2f\n",
                  static_cast<long long>(bpp), layout.nblocks(), cyclic, lpt);
    } else {
      std::printf("  %-10lld %-8d %.2f\n", static_cast<long long>(bpp),
                  layout.nblocks(), cyclic);
    }
  }
  // Persist the settled pile: any driver can restart from this file (see
  // io/checkpoint.hpp and tests/test_checkpoint.cpp).
  io::write_checkpoint<2>("sandpile_settled.ckpt", sim.config(),
                          io::snapshot(sim));
  std::printf("\nsettled state checkpointed to sandpile_settled.ckpt\n");

  std::printf(
      "\nA pile concentrates all links in the bottom blocks: at B/P=1 one\n"
      "process owns nearly all the work, and finer granularity (larger\n"
      "B/P) evens it out at the cost of the overheads measured in\n"
      "bench/fig3_mpi_granularity — the trade-off this paper quantifies.\n");
  return 0;
}
