// Granular friction: rough grains built from bonded particles.
//
// The Edinburgh physics code this paper's algorithm comes from models
// friction without empirical friction laws: "complex particles ... are
// collections of simpler basic particles stuck together with permanent
// bonds made of dissipative springs.  The idea is that the complicated
// macroscopic laws of friction will arise dynamically from the many
// microscopic collisions of these rough grains."
//
// This example builds square 4-particle grains, drops them under gravity
// into a walled box, and reports (a) grain integrity — bonds must hold
// through the tumble — and (b) the kinetic-energy decay caused purely by
// the dissipative bonds and inelastic pile-up.
//
//   ./granular_friction [--grains=150] [--steps=6000]
#include <cstdio>
#include <vector>

#include "core/serial_sim.hpp"
#include "util/cli.hpp"

using namespace hdem;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto grains =
      static_cast<std::uint64_t>(cli.integer("grains", 150, "number of grains"));
  const auto steps = static_cast<std::uint64_t>(
      cli.integer("steps", 10000, "settling iterations"));
  if (cli.finish()) return 0;

  SimConfig<2> cfg;
  cfg.box = Vec<2>(2.0, 2.0);
  cfg.bc = BoundaryKind::kWalls;
  cfg.gravity = Vec<2>(0.0, -1.5);
  cfg.stiffness = 400.0;
  cfg.dt = 3e-4;
  cfg.seed = 11;

  // Hand-build the initial condition: grains of four particles on a small
  // square, placed on a jittered lattice in the upper half of the box.
  const double spacing = cfg.diameter;  // bond rest length = contact range
  std::vector<ParticleInit<2>> init;
  Rng rng(cfg.seed);
  const auto side = static_cast<std::uint64_t>(std::ceil(std::sqrt(
      static_cast<double>(grains))));
  for (std::uint64_t g = 0; g < grains; ++g) {
    const double gx =
        0.15 + 1.7 * static_cast<double>(g % side) / static_cast<double>(side);
    const double gy = 0.5 + 0.9 * static_cast<double>(g / side) /
                                static_cast<double>(side);
    const Vec<2> jitter(rng.uniform(-0.01, 0.01), rng.uniform(-0.01, 0.01));
    for (int corner = 0; corner < 4; ++corner) {
      ParticleInit<2> p;
      p.pos = Vec<2>(gx + (corner % 2) * spacing, gy + (corner / 2) * spacing) +
              jitter;
      p.vel = Vec<2>(rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05));
      init.push_back(p);
    }
  }

  // Inelastic contacts (spring-dashpot) so the pile actually settles.
  SerialSim<2, DissipativeSphere> sim(
      cfg, DissipativeSphere{cfg.stiffness, 3.0, cfg.diameter}, init);

  // Permanent dissipative bonds: the four edges of each grain square plus
  // the two diagonals (shear stiffness, so grains tumble instead of
  // folding flat).  add_bond addresses particles by their stable ids.
  const BondedSpring edge{2000.0, 4.0, spacing};
  const BondedSpring diagonal{2000.0, 4.0, spacing * std::sqrt(2.0)};
  std::uint64_t nbonds = 0;
  for (std::uint64_t g = 0; g < grains; ++g) {
    const auto base = static_cast<std::int32_t>(4 * g);
    for (auto [a, b] : {std::pair{0, 1}, {0, 2}, {1, 3}, {2, 3}}) {
      sim.add_bond(base + a, base + b, edge);
      ++nbonds;
    }
    for (auto [a, b] : {std::pair{0, 3}, {1, 2}}) {
      sim.add_bond(base + a, base + b, diagonal);
      ++nbonds;
    }
  }
  std::printf("%llu grains (%zu particles, %llu bonds) falling...\n",
              static_cast<unsigned long long>(grains), init.size(),
              static_cast<unsigned long long>(nbonds));

  const std::uint64_t report_every = steps / 6 ? steps / 6 : 1;
  for (std::uint64_t s = 0; s < steps; ++s) {
    sim.step();
    if ((s + 1) % report_every == 0) {
      std::printf("  step %5llu: KE %8.4f  PE %8.4f\n",
                  static_cast<unsigned long long>(s + 1), sim.kinetic(),
                  sim.potential_energy());
    }
  }

  // Grain integrity: every bond must still be near its rest length.  Find
  // particles by id (reordering permutes storage indices).
  std::vector<Vec<2>> by_id(sim.store().size());
  for (std::size_t i = 0; i < sim.store().size(); ++i) {
    by_id[static_cast<std::size_t>(sim.store().id(i))] = sim.store().pos(i);
  }
  double worst_stretch = 0.0;
  for (std::uint64_t g = 0; g < grains; ++g) {
    const auto base = 4 * g;
    for (auto [a, b] : {std::pair{0, 1}, {0, 2}, {1, 3}, {2, 3}}) {
      const double len = norm(by_id[base + static_cast<std::uint64_t>(a)] -
                              by_id[base + static_cast<std::uint64_t>(b)]);
      worst_stretch =
          std::max(worst_stretch, std::abs(len - spacing) / spacing);
    }
  }
  std::printf("\nafter settling: worst bond stretch %.1f%% of rest length\n",
              100.0 * worst_stretch);
  std::printf("kinetic energy decayed to %.4f — dissipative bonds plus\n"
              "pile-up produce the macroscopic stickiness the physicists\n"
              "are after, with no empirical friction law anywhere in the\n"
              "force model.\n",
              sim.kinetic());
  return worst_stretch < 0.5 ? 0 : 1;
}
