// Profiling the hybrid code — the paper's Section 11 workflow.
//
// "We are currently making detailed profiles of the hybrid code to
// quantify the OpenMP overheads for the case of multiple blocks.  To this
// end we are making use of the OMPItrace and Paraver tools from CEPBA to
// produce and analyse accurate traces of performance."
//
// This example produces the same artefacts with the library's built-in
// tracer: per-phase time summaries for the per-block hybrid scheme versus
// the fused (Section 11) scheme at a fine granularity, plus a Chrome-trace
// timeline (open trace_hybrid.json in chrome://tracing or perfetto).
//
//   ./trace_profile [--n=8000] [--steps=40] [--blocks-per-proc=8]
//                   [--rebalance] [--steal]
#include <cstdio>

#include "driver/mp_sim.hpp"
#include "trace/tracer.hpp"
#include "util/cli.hpp"
#include "util/decomp_cli.hpp"

using namespace hdem;

namespace {

void profile(const char* label, const SimConfig<2>& cfg,
             const std::vector<ParticleInit<2>>& init,
             const DecompCliOptions& decomp, bool fused, bool overlap,
             std::uint64_t steps, const char* json_path) {
  trace::Tracer::global().enable(true);
  const int bpp = static_cast<int>(decomp.bpp());
  const auto layout = DecompLayout<2>::make(2, bpp);
  mp::run(2, [&](mp::Comm& comm) {
    MpSim<2>::Options opts;
    opts.nthreads = 2;
    opts.reduction = decomp.steal ? ReductionKind::kColored
                                  : ReductionKind::kSelectedAtomic;
    opts.fused = fused;
    opts.overlap = overlap;
    opts.steal = decomp.steal;
    opts.rebalance = decomp.rebalance;
    opts.rebalance_threshold = decomp.rebalance_threshold;
    opts.shared_halo = decomp.shared_halo;
    opts.ranks_per_node = static_cast<int>(decomp.ranks_per_node);
    MpSim<2> sim(cfg, layout, comm,
                 ElasticSphere{cfg.stiffness, cfg.diameter}, init, opts);
    sim.run(steps);
    if (comm.rank() == 0) {
      const auto c = sim.counters();
      std::printf("\n== %s (B/P=%d) ==\n", label, bpp);
      std::printf("parallel regions/iter: %.0f   locked updates: %.1f%%\n",
                  static_cast<double>(c.parallel_regions) /
                      static_cast<double>(c.iterations),
                  100.0 * static_cast<double>(c.atomic_updates) /
                      static_cast<double>(c.atomic_updates +
                                          c.plain_updates));
    }
  });
  std::printf("%s", trace::Tracer::global().summary_table().c_str());
  if (json_path != nullptr) {
    trace::Tracer::global().write_chrome_trace(json_path);
    std::printf("timeline written to %s (open in chrome://tracing)\n",
                json_path);
  }
  trace::Tracer::global().enable(false);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n =
      static_cast<std::uint64_t>(cli.integer("n", 8000, "particles"));
  const auto steps =
      static_cast<std::uint64_t>(cli.integer("steps", 40, "iterations"));
  const bool overlap =
      cli.choice("overlap", "off", {"off", "on"},
                 "overlap halo swaps with core-link forces") == "on";
  const auto decomp = declare_decomp_options(cli, {8});
  if (cli.finish()) return 0;

  SimConfig<2> cfg;
  cfg.box = Vec<2>(SimConfig<2>::paper_box_edge(n));
  cfg.seed = 31;
  const auto init = uniform_random_particles(cfg, n);

  profile("per-block hybrid", cfg, init, decomp, /*fused=*/false, overlap,
          steps, "trace_hybrid.json");
  profile("fused hybrid (SS11)", cfg, init, decomp, /*fused=*/true, overlap,
          steps, nullptr);

  std::printf(
      "\nThe per-block scheme opens 2 parallel regions per block per\n"
      "iteration and locks a growing share of force updates as blocks\n"
      "shrink; the fused scheme opens 2 regions total and locks almost\n"
      "nothing.  Compare the 'force' and 'update' rows above, and see\n"
      "bench/extension_fused_hybrid for the modelled cluster-scale effect.\n");
  return 0;
}
